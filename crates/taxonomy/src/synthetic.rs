//! Seeded generator of a realistic synthetic automotive part-and-error
//! taxonomy.
//!
//! The paper uses a proprietary legacy taxonomy with "about 1.800 / 1.900
//! distinct concepts in German and English" (§4.3), synonym-rich, with
//! multiword terms and a shallow structure over components, symptoms,
//! locations and solutions. This module builds an equivalent resource from a
//! hand-written automotive seed vocabulary, multiplied out with positional
//! modifiers and synonym patterns — deterministic for a given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::TaxonomyBuilder;
use crate::concept::{ConceptId, ConceptKind, Lang};
use crate::taxonomy::Taxonomy;

/// A generated taxonomy plus the groupings the corpus generator needs.
#[derive(Debug, Clone)]
pub struct SyntheticTaxonomy {
    pub taxonomy: Taxonomy,
    /// One entry per vehicle system: (system name, component leaf concepts).
    pub systems: Vec<(String, Vec<ConceptId>)>,
    /// All symptom leaf concepts.
    pub symptoms: Vec<ConceptId>,
    /// All location leaf concepts.
    pub locations: Vec<ConceptId>,
    /// All solution leaf concepts.
    pub solutions: Vec<ConceptId>,
}

/// Configuration for the generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    pub seed: u64,
    /// Probability that a part × modifier combination becomes its own leaf.
    pub modifier_leaf_prob: f64,
    /// Probability that a generated leaf is English-only (drives the paper's
    /// EN > DE concept-count asymmetry).
    pub english_only_prob: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 0xEDB7_2016,
            modifier_leaf_prob: 0.82,
            english_only_prob: 0.06,
        }
    }
}

/// (english, german) word pair.
type Pair = (&'static str, &'static str);

/// Vehicle systems with their base parts. Each part is (en, de, en-synonyms,
/// de-synonyms).
struct SystemSeed {
    name: &'static str,
    de: &'static str,
    parts: &'static [(
        &'static str,
        &'static str,
        &'static [&'static str],
        &'static [&'static str],
    )],
}

const SYSTEMS: &[SystemSeed] = &[
    SystemSeed {
        name: "engine",
        de: "motor",
        parts: &[
            ("cylinder head", "zylinderkopf", &["head"], &[]),
            ("piston", "kolben", &[], &[]),
            ("crankshaft", "kurbelwelle", &[], &[]),
            ("camshaft", "nockenwelle", &[], &[]),
            (
                "timing chain",
                "steuerkette",
                &["timing belt"],
                &["zahnriemen"],
            ),
            ("oil pump", "ölpumpe", &[], &[]),
            ("valve cover", "ventildeckel", &["rocker cover"], &[]),
            (
                "engine mount",
                "motorlager",
                &["motor mount"],
                &["motorhalterung"],
            ),
            ("turbocharger", "turbolader", &["turbo"], &["lader"]),
            ("intake manifold", "ansaugkrümmer", &["intake"], &[]),
        ],
    },
    SystemSeed {
        name: "cooling",
        de: "kühlung",
        parts: &[
            ("radiator", "kühler", &[], &[]),
            (
                "water pump",
                "wasserpumpe",
                &["coolant pump"],
                &["kühlmittelpumpe"],
            ),
            ("thermostat", "thermostat", &[], &[]),
            (
                "cooling fan",
                "kühlerlüfter",
                &["fan", "blower"],
                &["lüfter", "gebläse"],
            ),
            (
                "coolant hose",
                "kühlmittelschlauch",
                &["radiator hose"],
                &["kühlerschlauch"],
            ),
            (
                "expansion tank",
                "ausgleichsbehälter",
                &["overflow tank"],
                &[],
            ),
            ("fan clutch", "lüfterkupplung", &[], &[]),
            (
                "coolant sensor",
                "kühlmittelsensor",
                &["temperature sensor"],
                &["temperatursensor"],
            ),
        ],
    },
    SystemSeed {
        name: "brakes",
        de: "bremse",
        parts: &[
            ("brake pad", "bremsbelag", &["pad"], &["belag"]),
            (
                "brake disc",
                "bremsscheibe",
                &["rotor", "brake rotor"],
                &["scheibe"],
            ),
            ("brake caliper", "bremssattel", &["caliper"], &["sattel"]),
            (
                "brake hose",
                "bremsschlauch",
                &["brake line"],
                &["bremsleitung"],
            ),
            ("master cylinder", "hauptbremszylinder", &[], &[]),
            ("brake booster", "bremskraftverstärker", &["booster"], &[]),
            (
                "abs module",
                "abs-steuergerät",
                &["abs unit"],
                &["abs-modul"],
            ),
            (
                "handbrake cable",
                "handbremsseil",
                &["parking brake cable"],
                &[],
            ),
            ("wheel cylinder", "radbremszylinder", &[], &[]),
        ],
    },
    SystemSeed {
        name: "electrical",
        de: "elektrik",
        parts: &[
            (
                "alternator",
                "lichtmaschine",
                &["generator"],
                &["generator"],
            ),
            ("starter motor", "anlasser", &["starter"], &["starter"]),
            ("battery", "batterie", &[], &["akku"]),
            (
                "wiring harness",
                "kabelbaum",
                &["harness", "loom"],
                &["kabelstrang"],
            ),
            ("fuse box", "sicherungskasten", &["fuse panel"], &[]),
            ("ignition coil", "zündspule", &["coil"], &["spule"]),
            ("relay", "relais", &[], &[]),
            (
                "ground strap",
                "massekabel",
                &["ground cable"],
                &["masseband"],
            ),
            (
                "control unit",
                "steuergerät",
                &["ecu", "control module"],
                &["steuermodul"],
            ),
            (
                "sensor cable",
                "sensorkabel",
                &["sensor wire"],
                &["sensorleitung"],
            ),
        ],
    },
    SystemSeed {
        name: "infotainment",
        de: "infotainment",
        parts: &[
            ("radio", "radio", &["head unit", "tuner"], &["autoradio"]),
            ("amplifier", "verstärker", &["amp"], &[]),
            ("speaker", "lautsprecher", &["loudspeaker"], &["box"]),
            (
                "display",
                "display",
                &["screen", "monitor"],
                &["bildschirm", "anzeige"],
            ),
            ("antenna", "antenne", &["aerial"], &[]),
            (
                "navigation unit",
                "navigationsgerät",
                &["nav unit", "gps unit"],
                &["navi"],
            ),
            ("cd changer", "cd-wechsler", &["disc changer"], &[]),
            ("microphone", "mikrofon", &["mic"], &["mikro"]),
            ("bluetooth module", "bluetooth-modul", &["bt module"], &[]),
        ],
    },
    SystemSeed {
        name: "climate",
        de: "klima",
        parts: &[
            (
                "compressor",
                "kompressor",
                &["ac compressor"],
                &["klimakompressor"],
            ),
            ("condenser", "kondensator", &[], &[]),
            ("evaporator", "verdampfer", &[], &[]),
            (
                "blower motor",
                "gebläsemotor",
                &["fan motor"],
                &["lüftermotor"],
            ),
            (
                "heater core",
                "wärmetauscher",
                &["heat exchanger"],
                &["heizungskühler"],
            ),
            (
                "climate control panel",
                "klimabedienteil",
                &["ac panel"],
                &[],
            ),
            (
                "cabin filter",
                "innenraumfilter",
                &["pollen filter"],
                &["pollenfilter"],
            ),
            (
                "ac hose",
                "klimaschlauch",
                &["refrigerant line"],
                &["klimaleitung"],
            ),
        ],
    },
    SystemSeed {
        name: "transmission",
        de: "getriebe",
        parts: &[
            ("clutch", "kupplung", &["clutch assembly"], &[]),
            (
                "gearbox",
                "schaltgetriebe",
                &["transmission"],
                &["getriebe"],
            ),
            (
                "torque converter",
                "drehmomentwandler",
                &["converter"],
                &["wandler"],
            ),
            (
                "drive shaft",
                "antriebswelle",
                &["propshaft"],
                &["kardanwelle"],
            ),
            (
                "differential",
                "differential",
                &["diff"],
                &["ausgleichsgetriebe"],
            ),
            ("shift linkage", "schaltgestänge", &["gear linkage"], &[]),
            (
                "transmission mount",
                "getriebelager",
                &[],
                &["getriebehalterung"],
            ),
            (
                "cv joint",
                "gleichlaufgelenk",
                &["constant velocity joint"],
                &["antriebsgelenk"],
            ),
        ],
    },
    SystemSeed {
        name: "suspension",
        de: "fahrwerk",
        parts: &[
            (
                "shock absorber",
                "stoßdämpfer",
                &["damper", "shock"],
                &["dämpfer"],
            ),
            ("coil spring", "schraubenfeder", &["spring"], &["feder"]),
            ("control arm", "querlenker", &["wishbone"], &["lenker"]),
            ("ball joint", "kugelgelenk", &[], &["traggelenk"]),
            (
                "stabilizer bar",
                "stabilisator",
                &["sway bar", "anti-roll bar"],
                &["stabi"],
            ),
            ("wheel bearing", "radlager", &["hub bearing"], &[]),
            (
                "strut mount",
                "domlager",
                &["top mount"],
                &["federbeinlager"],
            ),
            ("bushing", "buchse", &["bush"], &["lagerbuchse"]),
        ],
    },
    SystemSeed {
        name: "fuel",
        de: "kraftstoff",
        parts: &[
            (
                "fuel pump",
                "kraftstoffpumpe",
                &["petrol pump"],
                &["benzinpumpe"],
            ),
            (
                "fuel injector",
                "einspritzdüse",
                &["injector"],
                &["injektor"],
            ),
            ("fuel filter", "kraftstofffilter", &[], &["benzinfilter"]),
            (
                "fuel tank",
                "kraftstofftank",
                &["tank", "petrol tank"],
                &["tank"],
            ),
            ("fuel rail", "kraftstoffverteiler", &[], &[]),
            (
                "fuel line",
                "kraftstoffleitung",
                &["fuel hose"],
                &["benzinleitung"],
            ),
            (
                "fuel gauge sender",
                "tankgeber",
                &["fuel level sensor"],
                &[],
            ),
        ],
    },
    SystemSeed {
        name: "exhaust",
        de: "abgasanlage",
        parts: &[
            (
                "catalytic converter",
                "katalysator",
                &["cat", "catalyst"],
                &["kat"],
            ),
            ("muffler", "schalldämpfer", &["silencer"], &["endtopf"]),
            (
                "exhaust manifold",
                "abgaskrümmer",
                &["header"],
                &["krümmer"],
            ),
            (
                "oxygen sensor",
                "lambdasonde",
                &["o2 sensor", "lambda sensor"],
                &["sonde"],
            ),
            ("exhaust pipe", "auspuffrohr", &["tailpipe"], &["rohr"]),
            (
                "egr valve",
                "agr-ventil",
                &["exhaust gas recirculation valve"],
                &[],
            ),
            (
                "particulate filter",
                "partikelfilter",
                &["dpf"],
                &["rußfilter"],
            ),
        ],
    },
    SystemSeed {
        name: "steering",
        de: "lenkung",
        parts: &[
            ("steering rack", "lenkgetriebe", &["rack and pinion"], &[]),
            ("tie rod", "spurstange", &["track rod"], &[]),
            ("steering column", "lenksäule", &[], &[]),
            (
                "power steering pump",
                "servopumpe",
                &["ps pump"],
                &["lenkhilfepumpe"],
            ),
            ("steering wheel", "lenkrad", &[], &[]),
            ("steering angle sensor", "lenkwinkelsensor", &[], &[]),
        ],
    },
    SystemSeed {
        name: "body",
        de: "karosserie",
        parts: &[
            ("door lock", "türschloss", &["lock actuator"], &["schloss"]),
            ("window regulator", "fensterheber", &["window lifter"], &[]),
            (
                "mirror",
                "spiegel",
                &["wing mirror", "side mirror"],
                &["außenspiegel"],
            ),
            (
                "fender",
                "kotflügel",
                &["mud guard", "splashboard", "wing"],
                &["schutzblech"],
            ),
            ("bumper", "stoßstange", &["bumper cover"], &["stoßfänger"]),
            ("hood latch", "haubenschloss", &["bonnet latch"], &[]),
            (
                "seal",
                "dichtung",
                &["gasket", "weatherstrip"],
                &["dichtring"],
            ),
            (
                "wiper motor",
                "wischermotor",
                &["windscreen wiper motor"],
                &["scheibenwischermotor"],
            ),
            ("seat adjuster", "sitzversteller", &["seat motor"], &[]),
        ],
    },
    SystemSeed {
        name: "lighting",
        de: "beleuchtung",
        parts: &[
            (
                "headlight",
                "scheinwerfer",
                &["headlamp"],
                &["frontscheinwerfer"],
            ),
            (
                "taillight",
                "rücklicht",
                &["rear light", "tail lamp"],
                &["heckleuchte"],
            ),
            (
                "turn signal",
                "blinker",
                &["indicator"],
                &["fahrtrichtungsanzeiger"],
            ),
            (
                "fog light",
                "nebelscheinwerfer",
                &["fog lamp"],
                &["nebelleuchte"],
            ),
            ("light switch", "lichtschalter", &[], &[]),
            ("ballast", "vorschaltgerät", &["xenon ballast"], &[]),
            ("led module", "led-modul", &[], &[]),
        ],
    },
    SystemSeed {
        name: "safety",
        de: "sicherheit",
        parts: &[
            ("airbag", "airbag", &["air bag"], &[]),
            ("seat belt", "sicherheitsgurt", &["safety belt"], &["gurt"]),
            ("belt tensioner", "gurtstraffer", &["pretensioner"], &[]),
            (
                "crash sensor",
                "crashsensor",
                &["impact sensor"],
                &["aufprallsensor"],
            ),
            ("horn", "hupe", &[], &["signalhorn"]),
            (
                "parking sensor",
                "einparksensor",
                &["pdc sensor"],
                &["parksensor"],
            ),
        ],
    },
];

/// Positional / variant modifiers applied to parts: (en, de).
const MODIFIERS: &[Pair] = &[
    ("front", "vorne"),
    ("rear", "hinten"),
    ("left", "links"),
    ("right", "rechts"),
    ("upper", "oben"),
    ("lower", "unten"),
    ("inner", "innen"),
    ("outer", "außen"),
    ("front left", "vorne links"),
    ("front right", "vorne rechts"),
    ("rear left", "hinten links"),
    ("rear right", "hinten rechts"),
    ("main", "haupt"),
    ("auxiliary", "zusatz"),
    ("secondary", "sekundär"),
    ("center", "mitte"),
    ("heated", "beheizt"),
];

/// Symptom categories with leaf symptoms: (en, de, en-synonyms, de-synonyms).
struct SymptomSeed {
    name: &'static str,
    leaves: &'static [(
        &'static str,
        &'static str,
        &'static [&'static str],
        &'static [&'static str],
    )],
}

const SYMPTOMS: &[SymptomSeed] = &[
    SymptomSeed {
        name: "Noise",
        leaves: &[
            (
                "squeak",
                "quietschen",
                &["squeaking", "squeal"],
                &["gequietsche"],
            ),
            ("screech", "kreischen", &["screeching"], &[]),
            ("hum", "brummen", &["humming", "drone"], &["gebrumm"]),
            ("roar", "dröhnen", &["roaring"], &[]),
            ("rattle", "klappern", &["rattling noise"], &["geklapper"]),
            ("knock", "klopfen", &["knocking"], &["geklopfe"]),
            (
                "grinding noise",
                "schleifgeräusch",
                &["grinding"],
                &["schleifen"],
            ),
            ("whistle", "pfeifen", &["whistling"], &[]),
            ("click", "klicken", &["clicking", "ticking"], &["ticken"]),
            (
                "crackling sound",
                "knistern",
                &["crackle", "crackling"],
                &["geknister"],
            ),
            ("buzz", "summen", &["buzzing"], &[]),
            ("creak", "knarzen", &["creaking"], &["knarren"]),
        ],
    },
    SymptomSeed {
        name: "Leak",
        leaves: &[
            (
                "oil leak",
                "ölverlust",
                &["oil leakage", "leaking oil"],
                &["öl undicht", "ölleckage"],
            ),
            (
                "coolant leak",
                "kühlmittelverlust",
                &["leaking coolant"],
                &["kühlmittel undicht"],
            ),
            (
                "fuel leak",
                "kraftstoffleck",
                &["leaking fuel"],
                &["benzin undicht"],
            ),
            (
                "water ingress",
                "wassereintritt",
                &["water entry", "moisture ingress"],
                &["feuchtigkeit"],
            ),
            ("air leak", "luftleck", &["vacuum leak"], &["falschluft"]),
            (
                "refrigerant leak",
                "kältemittelverlust",
                &[],
                &["kältemittelleck"],
            ),
            ("dripping", "tropfen", &["drips"], &["tropft"]),
            ("seepage", "schwitzen", &["sweating"], &[]),
        ],
    },
    SymptomSeed {
        name: "Electrical",
        leaves: &[
            ("short circuit", "kurzschluss", &["short"], &["kurzer"]),
            (
                "no power",
                "keine spannung",
                &["dead", "no voltage"],
                &["stromlos", "spannungslos"],
            ),
            (
                "intermittent contact",
                "wackelkontakt",
                &["loose contact", "flaky contact"],
                &["kontaktfehler"],
            ),
            (
                "burnt through",
                "durchgeschmort",
                &["melted wire", "scorched"],
                &["verschmort", "durchgebrannt"],
            ),
            (
                "corroded contact",
                "kontaktkorrosion",
                &["oxidized contact"],
                &["korrodierter kontakt"],
            ),
            (
                "blown fuse",
                "sicherung defekt",
                &["fuse blown"],
                &["sicherung durchgebrannt"],
            ),
            (
                "electrical smell",
                "elektrischer geruch",
                &["burning smell"],
                &["brandgeruch", "schmorgeruch"],
            ),
            (
                "error code stored",
                "fehlercode abgelegt",
                &["dtc stored", "fault code"],
                &["fehlereintrag"],
            ),
            (
                "signal loss",
                "signalverlust",
                &["no signal"],
                &["kein signal"],
            ),
            (
                "turns off by itself",
                "schaltet sich ab",
                &["switches off randomly", "shuts down"],
                &["geht aus"],
            ),
        ],
    },
    SymptomSeed {
        name: "Mechanical",
        leaves: &[
            (
                "crack",
                "riss",
                &["cracked", "fracture"],
                &["gerissen", "bruch"],
            ),
            ("broken", "gebrochen", &["snapped"], &["abgebrochen"]),
            (
                "seized",
                "festgefressen",
                &["stuck", "jammed"],
                &["blockiert", "fest"],
            ),
            ("loose", "locker", &["play", "slack"], &["spiel", "lose"]),
            (
                "bent",
                "verbogen",
                &["deformed", "warped"],
                &["verformt", "verzogen"],
            ),
            (
                "worn",
                "verschlissen",
                &["wear", "worn out"],
                &["abgenutzt", "verschleiß"],
            ),
            (
                "vibration",
                "vibration",
                &["shaking", "judder"],
                &["zittern", "rubbeln"],
            ),
            (
                "misaligned",
                "versetzt",
                &["out of alignment"],
                &["fluchtet nicht"],
            ),
            (
                "stripped thread",
                "gewinde defekt",
                &["damaged thread"],
                &["gewindeschaden"],
            ),
        ],
    },
    SymptomSeed {
        name: "Function",
        leaves: &[
            (
                "non-functional",
                "funktionslos",
                &["not working", "no function", "inoperative"],
                &["ohne funktion", "funktioniert nicht"],
            ),
            (
                "intermittent failure",
                "sporadischer ausfall",
                &["sporadic failure", "works sometimes"],
                &["zeitweiser ausfall"],
            ),
            (
                "slow response",
                "verzögerte reaktion",
                &["sluggish", "delayed response"],
                &["träge"],
            ),
            (
                "wrong reading",
                "falsche anzeige",
                &["incorrect display", "implausible value"],
                &["fehlanzeige", "unplausibel"],
            ),
            (
                "stuck open",
                "klemmt offen",
                &["remains open"],
                &["bleibt offen"],
            ),
            (
                "stuck closed",
                "klemmt geschlossen",
                &["remains closed"],
                &["bleibt zu"],
            ),
            (
                "no output",
                "keine leistung",
                &["no performance"],
                &["leistungslos"],
            ),
            (
                "resets",
                "setzt zurück",
                &["reboots", "restarts"],
                &["startet neu"],
            ),
        ],
    },
    SymptomSeed {
        name: "Thermal",
        leaves: &[
            (
                "overheating",
                "überhitzung",
                &["overheats", "too hot"],
                &["zu heiß", "überhitzt"],
            ),
            (
                "melted",
                "geschmolzen",
                &["molten", "heat damage"],
                &["hitzeschaden", "angeschmolzen"],
            ),
            (
                "discolored",
                "verfärbt",
                &["discoloration"],
                &["verfärbung"],
            ),
            (
                "no heat",
                "keine heizleistung",
                &["not heating"],
                &["heizt nicht"],
            ),
            (
                "no cooling",
                "keine kühlleistung",
                &["not cooling"],
                &["kühlt nicht"],
            ),
            ("smoke", "rauch", &["smoking"], &["qualm", "raucht"]),
        ],
    },
    SymptomSeed {
        name: "Corrosion",
        leaves: &[
            (
                "rust",
                "rost",
                &["rusty", "corrosion"],
                &["korrosion", "verrostet"],
            ),
            ("pitting", "lochfraß", &["pitted"], &[]),
            ("oxidation", "oxidation", &["oxidized"], &["oxidiert"]),
            ("salt damage", "salzschaden", &[], &[]),
        ],
    },
    SymptomSeed {
        name: "Contamination",
        leaves: &[
            (
                "dirty",
                "verschmutzt",
                &["contaminated", "soiled"],
                &["verdreckt", "schmutz"],
            ),
            (
                "clogged",
                "verstopft",
                &["blocked", "plugged"],
                &["zugesetzt", "dicht"],
            ),
            (
                "oily residue",
                "ölrückstände",
                &["oil film"],
                &["ölfilm", "verölt"],
            ),
            ("debris", "fremdkörper", &["foreign object"], &["späne"]),
        ],
    },
];

/// Location leaves: (en, de).
const LOCATIONS: &[Pair] = &[
    ("driver side", "fahrerseite"),
    ("passenger side", "beifahrerseite"),
    ("engine bay", "motorraum"),
    ("underbody", "unterboden"),
    ("dashboard", "armaturenbrett"),
    ("trunk", "kofferraum"),
    ("wheel arch", "radkasten"),
    ("firewall", "stirnwand"),
    ("center console", "mittelkonsole"),
    ("roof", "dach"),
    ("a-pillar", "a-säule"),
    ("b-pillar", "b-säule"),
    ("footwell", "fußraum"),
    ("bulkhead", "spritzwand"),
];

/// Solution leaves: (en, de, en-synonyms, de-synonyms).
const SOLUTIONS: &[(&str, &str, &[&str], &[&str])] = &[
    (
        "replaced",
        "ersetzt",
        &["exchanged", "renewed"],
        &["ausgetauscht", "erneuert"],
    ),
    ("repaired", "repariert", &["fixed"], &["instandgesetzt"]),
    ("resoldered", "nachgelötet", &["soldered"], &["gelötet"]),
    (
        "cleaned",
        "gereinigt",
        &["flushed"],
        &["gesäubert", "gespült"],
    ),
    (
        "adjusted",
        "eingestellt",
        &["calibrated", "aligned"],
        &["justiert", "kalibriert"],
    ),
    ("tightened", "nachgezogen", &["retorqued"], &["angezogen"]),
    (
        "reprogrammed",
        "neu programmiert",
        &["reflashed", "software update"],
        &["umprogrammiert", "softwareupdate"],
    ),
    ("sealed", "abgedichtet", &["resealed"], &["neu abgedichtet"]),
    ("lubricated", "geschmiert", &["greased"], &["gefettet"]),
    (
        "no fault found",
        "kein fehler feststellbar",
        &["could not reproduce", "tested ok"],
        &["i.o. getestet", "ohne befund"],
    ),
];

impl SyntheticTaxonomy {
    /// Generate with default configuration.
    pub fn generate(seed: u64) -> Self {
        Self::generate_with(&SyntheticConfig {
            seed,
            ..SyntheticConfig::default()
        })
    }

    /// Generate with explicit configuration.
    pub fn generate_with(config: &SyntheticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut b = TaxonomyBuilder::new("synthetic-automotive");

        let mut systems_out: Vec<(String, Vec<ConceptId>)> = Vec::new();
        let comp_root = b.root(ConceptKind::Component, "Component");
        for sys in SYSTEMS {
            let sys_node = b.child(comp_root, title(sys.name));
            // the system node itself carries multilingual labels, like the
            // language-independent upper levels of the paper's Fig. 10
            b.term(sys_node, Lang::En, sys.name);
            b.term(sys_node, Lang::De, sys.de);
            let mut leaves = Vec::new();
            for (en, de, en_syn, de_syn) in sys.parts {
                // plain part leaf
                let leaf = b.child(sys_node, title(en));
                let en_only = rng.random_bool(config.english_only_prob);
                b.term(leaf, Lang::En, *en);
                for s in *en_syn {
                    b.term(leaf, Lang::En, *s);
                }
                if !en_only {
                    b.term(leaf, Lang::De, *de);
                    for s in *de_syn {
                        b.term(leaf, Lang::De, *s);
                    }
                }
                leaves.push(leaf);
                // modifier variants
                for (men, mde) in MODIFIERS {
                    if !rng.random_bool(config.modifier_leaf_prob) {
                        continue;
                    }
                    let vleaf = b.child(sys_node, format!("{} {}", title(men), title(en)));
                    let ven = format!("{men} {en}");
                    b.term(vleaf, Lang::En, ven);
                    if let Some(s) = en_syn.first() {
                        b.term(vleaf, Lang::En, format!("{men} {s}"));
                    }
                    let v_en_only = rng.random_bool(config.english_only_prob);
                    if !v_en_only {
                        b.term(vleaf, Lang::De, format!("{de} {mde}"));
                    }
                    leaves.push(vleaf);
                }
            }
            systems_out.push((sys.name.to_owned(), leaves));
        }

        let mut symptoms_out = Vec::new();
        let sym_root = b.root(ConceptKind::Symptom, "Symptom");
        for cat in SYMPTOMS {
            let cat_node = b.child(sym_root, cat.name);
            for (en, de, en_syn, de_syn) in cat.leaves {
                let leaf = b.child(cat_node, title(en));
                b.term(leaf, Lang::En, *en);
                for s in *en_syn {
                    b.term(leaf, Lang::En, *s);
                }
                b.term(leaf, Lang::De, *de);
                for s in *de_syn {
                    b.term(leaf, Lang::De, *s);
                }
                symptoms_out.push(leaf);
                // intensity variants for a subset of symptoms
                if rng.random_bool(0.45) {
                    let vleaf = b.child(cat_node, format!("Severe {}", title(en)));
                    b.term(vleaf, Lang::En, format!("severe {en}"));
                    b.term(vleaf, Lang::En, format!("strong {en}"));
                    b.term(vleaf, Lang::De, format!("starkes {de}"));
                    symptoms_out.push(vleaf);
                }
            }
        }

        let mut locations_out = Vec::new();
        let loc_root = b.root(ConceptKind::Location, "Location");
        for (en, de) in LOCATIONS {
            let leaf = b.child(loc_root, title(en));
            b.term(leaf, Lang::En, *en);
            b.term(leaf, Lang::De, *de);
            locations_out.push(leaf);
        }

        let mut solutions_out = Vec::new();
        let sol_root = b.root(ConceptKind::Solution, "Solution");
        for (en, de, en_syn, de_syn) in SOLUTIONS {
            let leaf = b.child(sol_root, title(en));
            b.term(leaf, Lang::En, *en);
            for s in *en_syn {
                b.term(leaf, Lang::En, *s);
            }
            b.term(leaf, Lang::De, *de);
            for s in *de_syn {
                b.term(leaf, Lang::De, *s);
            }
            solutions_out.push(leaf);
        }

        let taxonomy = b.build().expect("generated taxonomy is structurally valid");
        SyntheticTaxonomy {
            taxonomy,
            systems: systems_out,
            symptoms: symptoms_out,
            locations: locations_out,
            solutions: solutions_out,
        }
    }

    /// All component leaf ids across systems.
    pub fn components(&self) -> Vec<ConceptId> {
        self.systems.iter().flat_map(|(_, l)| l.clone()).collect()
    }
}

fn title(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut cap = true;
    for c in s.chars() {
        if cap && c.is_alphabetic() {
            out.extend(c.to_uppercase());
            cap = false;
        } else {
            out.push(c);
            if c == ' ' || c == '-' {
                cap = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = SyntheticTaxonomy::generate(7);
        let b = SyntheticTaxonomy::generate(7);
        assert_eq!(a.taxonomy, b.taxonomy);
        let c = SyntheticTaxonomy::generate(8);
        assert_ne!(a.taxonomy, c.taxonomy);
    }

    #[test]
    fn size_matches_paper_scale() {
        let s = SyntheticTaxonomy::generate(SyntheticConfig::default().seed);
        let de = s.taxonomy.concept_count(Lang::De);
        let en = s.taxonomy.concept_count(Lang::En);
        // Paper: ~1800 German, ~1900 English distinct concepts.
        assert!((1300..=2400).contains(&de), "de concepts = {de}");
        assert!((1400..=2500).contains(&en), "en concepts = {en}");
        assert!(en > de, "en ({en}) should exceed de ({de})");
    }

    #[test]
    fn groupings_cover_kinds() {
        let s = SyntheticTaxonomy::generate(1);
        assert_eq!(s.systems.len(), SYSTEMS.len());
        assert!(!s.symptoms.is_empty());
        assert_eq!(s.locations.len(), LOCATIONS.len());
        assert_eq!(s.solutions.len(), SOLUTIONS.len());
        for id in s.components() {
            assert_eq!(s.taxonomy.get(id).unwrap().kind, ConceptKind::Component);
        }
        for id in &s.symptoms {
            assert_eq!(s.taxonomy.get(*id).unwrap().kind, ConceptKind::Symptom);
        }
    }

    #[test]
    fn synonym_richness() {
        let s = SyntheticTaxonomy::generate(1);
        let terms_en = s.taxonomy.term_count(Lang::En);
        let concepts_en = s.taxonomy.concept_count(Lang::En);
        // on average > 1 synonym per concept
        assert!(terms_en as f64 / concepts_en as f64 > 1.2);
    }

    #[test]
    fn multiword_terms_present() {
        let s = SyntheticTaxonomy::generate(1);
        let multi = s
            .taxonomy
            .term_entries()
            .filter(|(t, _)| t.text.contains(' '))
            .count();
        assert!(multi > 500, "found {multi} multiword terms");
    }

    #[test]
    fn title_casing() {
        assert_eq!(title("front left brake hose"), "Front Left Brake Hose");
        assert_eq!(title("abs module"), "Abs Module");
        assert_eq!(title("a-pillar"), "A-Pillar");
    }

    #[test]
    fn xml_roundtrip_of_generated() {
        let s = SyntheticTaxonomy::generate(3);
        let xml = crate::xml::write_taxonomy(&s.taxonomy);
        let parsed = crate::xml::parse_taxonomy(&xml).unwrap();
        assert_eq!(parsed, s.taxonomy);
    }
}
