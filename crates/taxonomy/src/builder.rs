//! Fluent construction of taxonomies.

use crate::concept::{Concept, ConceptId, ConceptKind, Lang, Term};
use crate::error::Result;
use crate::taxonomy::Taxonomy;

/// Incrementally assembles a [`Taxonomy`], allocating ids automatically.
///
/// ```
/// use qatk_taxonomy::prelude::*;
///
/// let mut b = TaxonomyBuilder::new("demo");
/// let noise = b.root(ConceptKind::Symptom, "Noise");
/// let squeak = b.child(noise, "Squeak");
/// b.term(squeak, Lang::En, "squeak");
/// b.term(squeak, Lang::De, "quietschen");
/// let tax = b.build().unwrap();
/// assert_eq!(tax.len(), 2);
/// ```
#[derive(Debug)]
pub struct TaxonomyBuilder {
    name: String,
    concepts: Vec<Concept>,
    next_id: u32,
}

impl TaxonomyBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        TaxonomyBuilder {
            name: name.into(),
            concepts: Vec::new(),
            next_id: 1,
        }
    }

    fn alloc(&mut self) -> ConceptId {
        let id = ConceptId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Add a root concept of a given kind.
    pub fn root(&mut self, kind: ConceptKind, name: impl Into<String>) -> ConceptId {
        let id = self.alloc();
        self.concepts.push(Concept {
            id,
            kind,
            name: name.into(),
            parent: None,
            terms: Vec::new(),
        });
        id
    }

    /// Add a child concept (inherits the parent's kind).
    ///
    /// Panics if `parent` was not allocated by this builder — that is a
    /// programming error, not a data error.
    pub fn child(&mut self, parent: ConceptId, name: impl Into<String>) -> ConceptId {
        let kind = self
            .concepts
            .iter()
            .find(|c| c.id == parent)
            .unwrap_or_else(|| panic!("unknown parent {parent}"))
            .kind;
        let id = self.alloc();
        self.concepts.push(Concept {
            id,
            kind,
            name: name.into(),
            parent: Some(parent),
            terms: Vec::new(),
        });
        id
    }

    /// Attach a surface term (synonym) to a concept.
    pub fn term(&mut self, id: ConceptId, lang: Lang, text: impl Into<String>) -> &mut Self {
        let c = self
            .concepts
            .iter_mut()
            .find(|c| c.id == id)
            .unwrap_or_else(|| panic!("unknown concept {id}"));
        c.terms.push(Term::new(lang, text));
        self
    }

    /// Attach several terms at once.
    pub fn terms<'a>(
        &mut self,
        id: ConceptId,
        lang: Lang,
        texts: impl IntoIterator<Item = &'a str>,
    ) -> &mut Self {
        for t in texts {
            self.term(id, lang, t);
        }
        self
    }

    /// Number of concepts added so far.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Taxonomy> {
        Taxonomy::new(self.name, self.concepts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_tree_with_terms() {
        let mut b = TaxonomyBuilder::new("t");
        let comp = b.root(ConceptKind::Component, "Electrical");
        let radio = b.child(comp, "Radio");
        b.terms(radio, Lang::En, ["radio", "head unit"]);
        b.term(radio, Lang::De, "radio");
        let fan = b.child(comp, "Fan");
        b.term(fan, Lang::De, "lüfter");
        assert_eq!(b.len(), 3);
        let tax = b.build().unwrap();
        assert_eq!(tax.children(comp).len(), 2);
        assert_eq!(tax.get(radio).unwrap().terms.len(), 3);
        assert_eq!(tax.concept_count(Lang::De), 2);
        assert_eq!(tax.concept_count(Lang::En), 1);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        let mut b = TaxonomyBuilder::new("t");
        b.child(ConceptId(99), "orphan");
    }

    #[test]
    #[should_panic(expected = "unknown concept")]
    fn unknown_term_target_panics() {
        let mut b = TaxonomyBuilder::new("t");
        b.term(ConceptId(99), Lang::En, "ghost");
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut b = TaxonomyBuilder::new("t");
        let a = b.root(ConceptKind::Symptom, "A");
        let c = b.child(a, "B");
        assert_ne!(a, c);
        assert_eq!(a, ConceptId(1));
        assert_eq!(c, ConceptId(2));
    }

    #[test]
    fn empty_builder_builds_empty_taxonomy() {
        let b = TaxonomyBuilder::new("empty");
        assert!(b.is_empty());
        let t = b.build().unwrap();
        assert!(t.is_empty());
    }
}
