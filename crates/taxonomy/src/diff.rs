//! Taxonomy version diffing.
//!
//! "Work on improving the coverage and maintainability of the domain-specific
//! taxonomy is already in progress" (paper §6), and [12] discusses taxonomy
//! transfer across tasks. Maintaining a shared resource needs tooling to see
//! what changed between versions: concepts added/removed, terms
//! added/removed, structure moved. That's what this module computes.

use std::collections::{HashMap, HashSet};

use crate::concept::{ConceptId, Lang, Term};
use crate::taxonomy::Taxonomy;

/// One concept-level change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConceptChange {
    /// Present only in the new version.
    Added(ConceptId),
    /// Present only in the old version.
    Removed(ConceptId),
    /// Renamed (same id, different canonical name).
    Renamed {
        id: ConceptId,
        from: String,
        to: String,
    },
    /// Moved to a different parent.
    Moved {
        id: ConceptId,
        from: Option<ConceptId>,
        to: Option<ConceptId>,
    },
}

/// The full difference report between two taxonomy versions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaxonomyDiff {
    pub concept_changes: Vec<ConceptChange>,
    /// Terms present only in the new version: (concept, term).
    pub terms_added: Vec<(ConceptId, Term)>,
    /// Terms present only in the old version.
    pub terms_removed: Vec<(ConceptId, Term)>,
}

impl TaxonomyDiff {
    /// Compute the difference from `old` to `new`.
    pub fn between(old: &Taxonomy, new: &Taxonomy) -> TaxonomyDiff {
        let old_ids: HashMap<ConceptId, usize> = old
            .concepts()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id, i))
            .collect();
        let new_ids: HashMap<ConceptId, usize> = new
            .concepts()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id, i))
            .collect();

        let mut diff = TaxonomyDiff::default();
        for c in new.concepts() {
            if !old_ids.contains_key(&c.id) {
                diff.concept_changes.push(ConceptChange::Added(c.id));
                for t in &c.terms {
                    diff.terms_added.push((c.id, t.clone()));
                }
            }
        }
        for c in old.concepts() {
            match new_ids.get(&c.id) {
                None => {
                    diff.concept_changes.push(ConceptChange::Removed(c.id));
                    for t in &c.terms {
                        diff.terms_removed.push((c.id, t.clone()));
                    }
                }
                Some(&ni) => {
                    let n = &new.concepts()[ni];
                    if n.name != c.name {
                        diff.concept_changes.push(ConceptChange::Renamed {
                            id: c.id,
                            from: c.name.clone(),
                            to: n.name.clone(),
                        });
                    }
                    if n.parent != c.parent {
                        diff.concept_changes.push(ConceptChange::Moved {
                            id: c.id,
                            from: c.parent,
                            to: n.parent,
                        });
                    }
                    let old_terms: HashSet<&Term> = c.terms.iter().collect();
                    let new_terms: HashSet<&Term> = n.terms.iter().collect();
                    for t in new_terms.difference(&old_terms) {
                        diff.terms_added.push((c.id, (*t).clone()));
                    }
                    for t in old_terms.difference(&new_terms) {
                        diff.terms_removed.push((c.id, (*t).clone()));
                    }
                }
            }
        }
        diff.sort();
        diff
    }

    fn sort(&mut self) {
        let key = |c: &ConceptChange| match c {
            ConceptChange::Added(id) => (0u8, id.0),
            ConceptChange::Removed(id) => (1, id.0),
            ConceptChange::Renamed { id, .. } => (2, id.0),
            ConceptChange::Moved { id, .. } => (3, id.0),
        };
        self.concept_changes.sort_by_key(key);
        let term_key = |(id, t): &(ConceptId, Term)| (id.0, t.lang, t.text.clone());
        self.terms_added.sort_by_key(term_key);
        self.terms_removed.sort_by_key(term_key);
    }

    /// No difference at all?
    pub fn is_empty(&self) -> bool {
        self.concept_changes.is_empty()
            && self.terms_added.is_empty()
            && self.terms_removed.is_empty()
    }

    /// Count of synonym terms gained in a language (coverage growth — the
    /// metric taxonomy maintenance tracks).
    pub fn coverage_gain(&self, lang: Lang) -> usize {
        self.terms_added
            .iter()
            .filter(|(_, t)| t.lang == lang)
            .count()
    }

    /// Human-readable summary, one line per change.
    pub fn render(&self, old: &Taxonomy, new: &Taxonomy) -> String {
        use std::fmt::Write as _;
        let name_of = |id: ConceptId| {
            new.get(id)
                .or_else(|| old.get(id))
                .map(|c| c.name.as_str())
                .unwrap_or("?")
        };
        let mut out = String::new();
        for ch in &self.concept_changes {
            match ch {
                ConceptChange::Added(id) => {
                    let _ = writeln!(out, "+ concept {id} {}", name_of(*id));
                }
                ConceptChange::Removed(id) => {
                    let _ = writeln!(out, "- concept {id} {}", name_of(*id));
                }
                ConceptChange::Renamed { id, from, to } => {
                    let _ = writeln!(out, "~ concept {id} renamed {from} -> {to}");
                }
                ConceptChange::Moved { id, from, to } => {
                    let _ = writeln!(
                        out,
                        "~ concept {id} moved {} -> {}",
                        from.map(|p| p.to_string()).unwrap_or_else(|| "root".into()),
                        to.map(|p| p.to_string()).unwrap_or_else(|| "root".into())
                    );
                }
            }
        }
        for (id, t) in &self.terms_added {
            let _ = writeln!(
                out,
                "+ term [{}] \"{}\" @ {id} {}",
                t.lang,
                t.text,
                name_of(*id)
            );
        }
        for (id, t) in &self.terms_removed {
            let _ = writeln!(
                out,
                "- term [{}] \"{}\" @ {id} {}",
                t.lang,
                t.text,
                name_of(*id)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaxonomyBuilder;
    use crate::concept::ConceptKind;

    fn v1() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("v1");
        let comp = b.root(ConceptKind::Component, "Component");
        let radio = b.child(comp, "Radio");
        b.term(radio, Lang::En, "radio");
        let fan = b.child(comp, "Fan");
        b.term(fan, Lang::De, "Lüfter");
        b.build().unwrap()
    }

    #[test]
    fn identical_versions_are_empty_diff() {
        let d = TaxonomyDiff::between(&v1(), &v1());
        assert!(d.is_empty());
        assert_eq!(d.coverage_gain(Lang::En), 0);
    }

    #[test]
    fn term_additions_detected() {
        let old = v1();
        let mut b = TaxonomyBuilder::new("v2");
        let comp = b.root(ConceptKind::Component, "Component");
        let radio = b.child(comp, "Radio");
        b.term(radio, Lang::En, "radio");
        b.term(radio, Lang::En, "head unit");
        b.term(radio, Lang::De, "autoradio");
        let fan = b.child(comp, "Fan");
        b.term(fan, Lang::De, "Lüfter");
        let new = b.build().unwrap();

        let d = TaxonomyDiff::between(&old, &new);
        assert!(d.concept_changes.is_empty());
        assert_eq!(d.terms_added.len(), 2);
        assert_eq!(d.coverage_gain(Lang::En), 1);
        assert_eq!(d.coverage_gain(Lang::De), 1);
        assert!(d.terms_removed.is_empty());
        let text = d.render(&old, &new);
        assert!(text.contains("head unit"));
        assert!(text.contains("autoradio"));
    }

    #[test]
    fn concept_add_remove_rename_move() {
        let old = v1();
        // v2: drop Fan (id 3), rename Radio, add Antenna under Component,
        // and move nothing
        let mut b = TaxonomyBuilder::new("v2");
        let comp = b.root(ConceptKind::Component, "Component");
        let radio = b.child(comp, "Head Unit"); // same id 2, renamed
        b.term(radio, Lang::En, "radio");
        let antenna = b.child(comp, "Antenna"); // id 3 reused!
        b.term(antenna, Lang::En, "antenna");
        let new = b.build().unwrap();

        let d = TaxonomyDiff::between(&old, &new);
        // id 3 exists in both (Fan -> Antenna) so it's a rename, not add+remove
        assert!(d
            .concept_changes
            .iter()
            .any(|c| matches!(c, ConceptChange::Renamed { id, .. } if id.0 == 2)));
        assert!(d
            .concept_changes
            .iter()
            .any(|c| matches!(c, ConceptChange::Renamed { id, .. } if id.0 == 3)));
        // Fan's German term is gone, Antenna's English term is new
        assert!(d.terms_removed.iter().any(|(_, t)| t.text == "Lüfter"));
        assert!(d.terms_added.iter().any(|(_, t)| t.text == "antenna"));
    }

    #[test]
    fn moves_detected() {
        let mut b = TaxonomyBuilder::new("v1");
        let a = b.root(ConceptKind::Symptom, "A");
        let _b2 = b.root(ConceptKind::Symptom, "B");
        let child = b.child(a, "C");
        let _ = child;
        let old = b.build().unwrap();

        let mut b = TaxonomyBuilder::new("v2");
        let _a = b.root(ConceptKind::Symptom, "A");
        let b2 = b.root(ConceptKind::Symptom, "B");
        let _child = b.child(b2, "C");
        let new = b.build().unwrap();

        let d = TaxonomyDiff::between(&old, &new);
        assert!(d
            .concept_changes
            .iter()
            .any(|c| matches!(c, ConceptChange::Moved { id, .. } if id.0 == 3)));
        let text = d.render(&old, &new);
        assert!(text.contains("moved"));
    }

    #[test]
    fn expansion_shows_up_as_pure_coverage_gain() {
        let syn = crate::synthetic::SyntheticTaxonomy::generate(4);
        let (expanded, stats) =
            crate::expansion::expand_taxonomy(&syn.taxonomy, &Default::default()).unwrap();
        let d = TaxonomyDiff::between(&syn.taxonomy, &expanded);
        assert!(d.concept_changes.is_empty());
        assert!(d.terms_removed.is_empty());
        assert_eq!(d.terms_added.len(), stats.added_terms);
        assert_eq!(
            d.coverage_gain(Lang::De) + d.coverage_gain(Lang::En),
            stats.added_terms
        );
    }
}
