//! Concepts: the nodes of the automotive part-and-error taxonomy.
//!
//! Following the paper (§4.5.3, Fig. 10) the taxonomy has a shallow tree
//! structure whose *upper levels are language-independent* (with multilingual
//! display labels) and whose *leaf categories are language-specific*,
//! containing synonyms — surface terms — for the same concept.

use std::fmt;

/// Identifier of a concept, unique within one taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u32);

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// The four top-level categories the taxonomy distinguishes (paper §4.5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConceptKind {
    /// Car parts: "radio", "Lüfter", "fuel pump".
    Component,
    /// Error symptoms: "crackling sound", "durchgeschmort".
    Symptom,
    /// Positions on the vehicle: "front left", "hinten rechts".
    Location,
    /// Remedies: "replaced", "nachgelötet".
    Solution,
}

impl ConceptKind {
    pub const ALL: [ConceptKind; 4] = [
        ConceptKind::Component,
        ConceptKind::Symptom,
        ConceptKind::Location,
        ConceptKind::Solution,
    ];

    /// Stable lowercase name used by the XML format.
    pub fn as_str(self) -> &'static str {
        match self {
            ConceptKind::Component => "component",
            ConceptKind::Symptom => "symptom",
            ConceptKind::Location => "location",
            ConceptKind::Solution => "solution",
        }
    }

    /// Inverse of [`ConceptKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "component" => Some(ConceptKind::Component),
            "symptom" => Some(ConceptKind::Symptom),
            "location" => Some(ConceptKind::Location),
            "solution" => Some(ConceptKind::Solution),
            _ => None,
        }
    }
}

impl fmt::Display for ConceptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Languages the taxonomy covers. The paper's resource is German/English;
/// the scheme extends to more languages, which `Lang` models explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lang {
    De,
    En,
}

impl Lang {
    pub const ALL: [Lang; 2] = [Lang::De, Lang::En];

    pub fn as_str(self) -> &'static str {
        match self {
            Lang::De => "de",
            Lang::En => "en",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "de" => Some(Lang::De),
            "en" => Some(Lang::En),
            _ => None,
        }
    }
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A surface term: one synonym in one language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    pub lang: Lang,
    /// Raw surface text as found in reports ("crackling sound",
    /// "durchgeschmort"). Multi-word terms are supported and matter for the
    /// annotator's longest-match behaviour.
    pub text: String,
}

impl Term {
    /// Create a term. Surrounding whitespace is insignificant for a token
    /// sequence and is trimmed, so construction and XML parsing agree on
    /// one canonical form.
    pub fn new(lang: Lang, text: impl Into<String>) -> Self {
        Term {
            lang,
            text: text.into().trim().to_owned(),
        }
    }
}

/// A taxonomy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    pub id: ConceptId,
    pub kind: ConceptKind,
    /// Language-independent canonical name ("HighNoise", "Radio").
    pub name: String,
    /// Parent node; `None` for the four kind roots.
    pub parent: Option<ConceptId>,
    /// Synonym surface terms (only leaves typically carry terms, but the
    /// model allows terms on inner nodes too).
    pub terms: Vec<Term>,
}

impl Concept {
    /// Terms restricted to one language.
    pub fn terms_in(&self, lang: Lang) -> impl Iterator<Item = &Term> {
        self.terms.iter().filter(move |t| t.lang == lang)
    }

    /// True if this concept carries at least one term in `lang`.
    pub fn has_lang(&self, lang: Lang) -> bool {
        self.terms.iter().any(|t| t.lang == lang)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_str_roundtrip() {
        for k in ConceptKind::ALL {
            assert_eq!(ConceptKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ConceptKind::parse("noise"), None);
    }

    #[test]
    fn lang_str_roundtrip() {
        for l in Lang::ALL {
            assert_eq!(Lang::parse(l.as_str()), Some(l));
        }
        assert_eq!(Lang::parse("fr"), None);
    }

    #[test]
    fn term_filtering() {
        let c = Concept {
            id: ConceptId(1),
            kind: ConceptKind::Symptom,
            name: "Squeak".into(),
            parent: None,
            terms: vec![
                Term::new(Lang::En, "squeak"),
                Term::new(Lang::En, "squeaking noise"),
                Term::new(Lang::De, "quietschen"),
            ],
        };
        assert_eq!(c.terms_in(Lang::En).count(), 2);
        assert_eq!(c.terms_in(Lang::De).count(), 1);
        assert!(c.has_lang(Lang::De));
    }

    #[test]
    fn ids_display() {
        assert_eq!(ConceptId(42).to_string(), "C42");
        assert_eq!(ConceptKind::Symptom.to_string(), "symptom");
        assert_eq!(Lang::De.to_string(), "de");
    }
}
