//! Synonym expansion from concept-label substrings.
//!
//! "Like the original approach, we expand the concepts of the taxonomy with
//! synonyms of concept label substrings as found in the taxonomy itself"
//! (paper §4.5.3). Concretely: if a multiword term of concept *C* contains a
//! token span that is itself a term of some concept *D*, then every other
//! synonym of *D* (same language) generates a variant of *C*'s term.
//!
//! Example: "crackling sound" (symptom C) + concept D with terms
//! {"sound", "noise"} ⇒ the variant "crackling noise" is added to C.

use std::collections::HashMap;

use crate::concept::{Concept, Lang, Term};
use crate::error::Result;
use crate::normalize::normalize_phrase;
use crate::taxonomy::Taxonomy;

/// Limits for the expansion, guarding against combinatorial blow-up on
/// synonym-rich taxonomies.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionConfig {
    /// Maximum variants generated per original term.
    pub max_variants_per_term: usize,
    /// Maximum span length (in tokens) considered for substitution.
    pub max_span_tokens: usize,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            max_variants_per_term: 8,
            max_span_tokens: 3,
        }
    }
}

/// Statistics of one expansion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionStats {
    pub original_terms: usize,
    pub added_terms: usize,
}

/// Expand a taxonomy, returning the enriched copy plus statistics.
pub fn expand_taxonomy(
    tax: &Taxonomy,
    config: &ExpansionConfig,
) -> Result<(Taxonomy, ExpansionStats)> {
    // Map normalized token-sequence -> synonyms (normalized-joined strings)
    // per language, across the whole taxonomy. Synonym groups are per
    // concept: all terms of one concept in one language are synonyms.
    type Key = (Lang, Vec<String>);
    let mut synonym_groups: HashMap<Key, Vec<Vec<String>>> = HashMap::new();
    for c in tax.concepts() {
        for lang in Lang::ALL {
            let variants: Vec<Vec<String>> = c
                .terms_in(lang)
                .map(|t| normalize_phrase(&t.text))
                .filter(|v| !v.is_empty())
                .collect();
            if variants.len() < 2 {
                continue;
            }
            for v in &variants {
                synonym_groups
                    .entry((lang, v.clone()))
                    .or_default()
                    .extend(variants.iter().filter(|o| *o != v).cloned());
            }
        }
    }

    let mut original_terms = 0usize;
    let mut added_terms = 0usize;
    let mut new_concepts: Vec<Concept> = Vec::with_capacity(tax.len());

    for c in tax.concepts() {
        let mut concept = c.clone();
        let mut seen: Vec<(Lang, Vec<String>)> = concept
            .terms
            .iter()
            .map(|t| (t.lang, normalize_phrase(&t.text)))
            .collect();
        original_terms += concept.terms.len();

        let mut additions: Vec<Term> = Vec::new();
        for term in &c.terms {
            let tokens = normalize_phrase(&term.text);
            if tokens.len() < 2 {
                continue; // only multiword terms have substrings to vary
            }
            let mut budget = config.max_variants_per_term;
            'spans: for span_len in (1..=config.max_span_tokens.min(tokens.len() - 1)).rev() {
                for start in 0..=(tokens.len() - span_len) {
                    let span = tokens[start..start + span_len].to_vec();
                    let Some(replacements) = synonym_groups.get(&(term.lang, span)) else {
                        continue;
                    };
                    for repl in replacements {
                        if budget == 0 {
                            break 'spans;
                        }
                        let mut variant = Vec::with_capacity(tokens.len());
                        variant.extend_from_slice(&tokens[..start]);
                        variant.extend_from_slice(repl);
                        variant.extend_from_slice(&tokens[start + span_len..]);
                        let key = (term.lang, variant.clone());
                        if seen.contains(&key) {
                            continue;
                        }
                        seen.push(key);
                        additions.push(Term::new(term.lang, variant.join(" ")));
                        added_terms += 1;
                        budget -= 1;
                    }
                }
            }
        }
        concept.terms.extend(additions);
        new_concepts.push(concept);
    }

    let expanded = Taxonomy::new(tax.name().to_owned(), new_concepts)?;
    Ok((
        expanded,
        ExpansionStats {
            original_terms,
            added_terms,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaxonomyBuilder;
    use crate::concept::ConceptKind;

    fn base() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("t");
        let noise = b.root(ConceptKind::Symptom, "NoiseWord");
        b.terms(noise, Lang::En, ["sound", "noise"]);
        let crackle = b.root(ConceptKind::Symptom, "Crackle");
        b.term(crackle, Lang::En, "crackling sound");
        let hum = b.root(ConceptKind::Symptom, "Hum");
        b.term(hum, Lang::De, "brummen");
        b.build().unwrap()
    }

    #[test]
    fn expands_multiword_via_synonym_group() {
        let (tax, stats) = expand_taxonomy(&base(), &ExpansionConfig::default()).unwrap();
        let crackle = tax.concepts().iter().find(|c| c.name == "Crackle").unwrap();
        let texts: Vec<&str> = crackle.terms.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"crackling noise"), "{texts:?}");
        assert_eq!(stats.added_terms, 1);
        assert_eq!(stats.original_terms, 4);
    }

    #[test]
    fn single_word_terms_unchanged() {
        let (tax, _) = expand_taxonomy(&base(), &ExpansionConfig::default()).unwrap();
        let hum = tax.concepts().iter().find(|c| c.name == "Hum").unwrap();
        assert_eq!(hum.terms.len(), 1);
    }

    #[test]
    fn language_boundaries_respected() {
        let mut b = TaxonomyBuilder::new("t");
        let g = b.root(ConceptKind::Symptom, "Ger");
        b.terms(g, Lang::De, ["geräusch", "ton"]);
        let c = b.root(ConceptKind::Symptom, "EnCrack");
        // English multiword containing the *German* word "ton" — must not expand.
        b.term(c, Lang::En, "ton issue");
        let tax = b.build().unwrap();
        let (out, stats) = expand_taxonomy(&tax, &ExpansionConfig::default()).unwrap();
        assert_eq!(stats.added_terms, 0);
        let enc = out.concepts().iter().find(|k| k.name == "EnCrack").unwrap();
        assert_eq!(enc.terms.len(), 1);
    }

    #[test]
    fn budget_caps_variants() {
        let mut b = TaxonomyBuilder::new("t");
        let syn = b.root(ConceptKind::Symptom, "Many");
        b.terms(
            syn,
            Lang::En,
            ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"],
        );
        let c = b.root(ConceptKind::Symptom, "Host");
        b.term(c, Lang::En, "alpha problem");
        let tax = b.build().unwrap();
        let cfg = ExpansionConfig {
            max_variants_per_term: 2,
            max_span_tokens: 3,
        };
        let (out, stats) = expand_taxonomy(&tax, &cfg).unwrap();
        assert_eq!(stats.added_terms, 2);
        let host = out.concepts().iter().find(|k| k.name == "Host").unwrap();
        assert_eq!(host.terms.len(), 3);
    }

    #[test]
    fn no_duplicate_variants() {
        let mut b = TaxonomyBuilder::new("t");
        let syn = b.root(ConceptKind::Symptom, "S");
        b.terms(syn, Lang::En, ["sound", "noise"]);
        let c = b.root(ConceptKind::Symptom, "C");
        // already contains the would-be variant
        b.term(c, Lang::En, "crackling sound");
        b.term(c, Lang::En, "crackling noise");
        let tax = b.build().unwrap();
        let (_, stats) = expand_taxonomy(&tax, &ExpansionConfig::default()).unwrap();
        assert_eq!(stats.added_terms, 0);
    }

    #[test]
    fn expanded_taxonomy_still_valid() {
        let (tax, _) = expand_taxonomy(&base(), &ExpansionConfig::default()).unwrap();
        // a second expansion over the result also works (idempotent-ish)
        let (tax2, stats2) = expand_taxonomy(&tax, &ExpansionConfig::default()).unwrap();
        assert_eq!(stats2.added_terms, 0);
        assert_eq!(tax2.len(), tax.len());
    }
}
