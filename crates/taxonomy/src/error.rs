//! Taxonomy error type.

use std::fmt;

use crate::concept::ConceptId;

/// Errors for taxonomy construction and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// A concept id was used twice.
    DuplicateId(ConceptId),
    /// A parent reference points to a non-existent concept.
    MissingParent { child: ConceptId, parent: ConceptId },
    /// A parent/child edge crosses kinds (a Symptom under a Component, …).
    KindMismatch { child: ConceptId, parent: ConceptId },
    /// Concept refers to itself or an ancestor cycle was found.
    Cycle(ConceptId),
    /// A concept has an empty canonical name or empty term text.
    EmptyName(ConceptId),
    /// XML syntax error with a byte offset.
    Xml { offset: usize, message: String },
    /// XML is well-formed but not a valid taxonomy document.
    Format(String),
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::DuplicateId(id) => write!(f, "duplicate concept id {id}"),
            TaxonomyError::MissingParent { child, parent } => {
                write!(f, "concept {child} references missing parent {parent}")
            }
            TaxonomyError::KindMismatch { child, parent } => {
                write!(
                    f,
                    "concept {child} has a different kind than parent {parent}"
                )
            }
            TaxonomyError::Cycle(id) => write!(f, "cycle through concept {id}"),
            TaxonomyError::EmptyName(id) => write!(f, "concept {id} has an empty name/term"),
            TaxonomyError::Xml { offset, message } => {
                write!(f, "xml error at byte {offset}: {message}")
            }
            TaxonomyError::Format(m) => write!(f, "invalid taxonomy document: {m}"),
        }
    }
}

impl std::error::Error for TaxonomyError {}

pub type Result<T> = std::result::Result<T, TaxonomyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all() {
        let errs = [
            TaxonomyError::DuplicateId(ConceptId(1)),
            TaxonomyError::MissingParent {
                child: ConceptId(1),
                parent: ConceptId(2),
            },
            TaxonomyError::KindMismatch {
                child: ConceptId(1),
                parent: ConceptId(2),
            },
            TaxonomyError::Cycle(ConceptId(3)),
            TaxonomyError::EmptyName(ConceptId(4)),
            TaxonomyError::Xml {
                offset: 10,
                message: "unexpected <".into(),
            },
            TaxonomyError::Format("no root".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
