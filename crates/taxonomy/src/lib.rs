//! # qatk-taxonomy — the multilingual automotive part-and-error taxonomy
//!
//! The paper's domain-specific classification variant rests on a legacy
//! semantic resource: "a taxonomy of car parts and error symptoms ...
//! multilingual — its upper category levels are language-independent with
//! multilingual labels, its leaf categories are language-specific and contain
//! synonyms of terms for the same concept" (§4.5.3). That resource is
//! proprietary; this crate implements the full machinery around an equivalent
//! synthetic instance:
//!
//! * the concept model ([`concept`]) with the paper's four kinds —
//!   components, symptoms, locations, solutions,
//! * a validated container with navigation and statistics ([`taxonomy`]),
//! * a fluent builder ([`builder`]),
//! * the custom XML storage format with a from-scratch parser ([`xml`]),
//! * synonym expansion from concept-label substrings ([`expansion`]) and
//!   version diffing for maintenance ([`diff`]),
//! * the token trie behind the optimized annotator ([`trie`]),
//! * shared token normalization ([`normalize`]),
//! * and a seeded generator of a paper-scale synthetic automotive taxonomy
//!   ([`synthetic`]).

pub mod builder;
pub mod concept;
pub mod diff;
pub mod error;
pub mod expansion;
pub mod normalize;
pub mod synthetic;
pub mod taxonomy;
pub mod trie;
pub mod xml;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::builder::TaxonomyBuilder;
    pub use crate::concept::{Concept, ConceptId, ConceptKind, Lang, Term};
    pub use crate::diff::{ConceptChange, TaxonomyDiff};
    pub use crate::error::{Result as TaxonomyResult, TaxonomyError};
    pub use crate::expansion::{expand_taxonomy, ExpansionConfig, ExpansionStats};
    pub use crate::normalize::{is_separator, normalize_phrase, normalize_token};
    pub use crate::synthetic::{SyntheticConfig, SyntheticTaxonomy};
    pub use crate::taxonomy::Taxonomy;
    pub use crate::trie::TokenTrie;
    pub use crate::xml::{parse_taxonomy, write_taxonomy};
}

pub use prelude::*;
