//! Token-sequence trie for fast longest-match concept lookup.
//!
//! The paper's optimized annotator "represent\[s\] the taxonomy as a trie data
//! structure ... which allows for fast search and retrieval" with "a
//! left-bounded greedy longest-match approach" (§4.5.3). Keys are sequences
//! of *normalized* tokens (see [`crate::normalize`]); values are the concepts
//! whose surface terms normalize to that sequence.

use std::collections::HashMap;

use crate::concept::{ConceptId, Lang};
use crate::normalize::normalize_phrase;
use crate::taxonomy::Taxonomy;

#[derive(Debug, Default, Clone)]
struct TrieNode {
    children: HashMap<String, usize>,
    /// Concepts ending exactly at this node (usually 0 or 1; synonyms shared
    /// across languages or concepts can legitimately collide).
    concepts: Vec<ConceptId>,
}

/// A trie over token sequences.
#[derive(Debug, Clone)]
pub struct TokenTrie {
    nodes: Vec<TrieNode>,
    entries: usize,
}

impl Default for TokenTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenTrie {
    pub fn new() -> Self {
        TokenTrie {
            nodes: vec![TrieNode::default()],
            entries: 0,
        }
    }

    /// Build from every term of a taxonomy, across all languages. The trie is
    /// what makes the annotator language-independent: a German and an English
    /// synonym of the same concept lead to the same [`ConceptId`].
    pub fn from_taxonomy(tax: &Taxonomy) -> Self {
        let mut trie = TokenTrie::new();
        for (term, concept) in tax.term_entries() {
            trie.insert_phrase(&term.text, concept.id);
        }
        trie
    }

    /// Build from terms of a single language only (used to model the legacy
    /// annotator, which was not multilingual).
    pub fn from_taxonomy_lang(tax: &Taxonomy, lang: Lang) -> Self {
        let mut trie = TokenTrie::new();
        for (term, concept) in tax.term_entries() {
            if term.lang == lang {
                trie.insert_phrase(&term.text, concept.id);
            }
        }
        trie
    }

    /// Insert a raw phrase (normalized and tokenized internally).
    pub fn insert_phrase(&mut self, phrase: &str, concept: ConceptId) {
        let tokens = normalize_phrase(phrase);
        if tokens.is_empty() {
            return;
        }
        self.insert_tokens(&tokens, concept);
    }

    /// Insert a pre-normalized token sequence.
    pub fn insert_tokens(&mut self, tokens: &[String], concept: ConceptId) {
        let mut node = 0usize;
        for t in tokens {
            let next = match self.nodes[node].children.get(t) {
                Some(&n) => n,
                None => {
                    self.nodes.push(TrieNode::default());
                    let n = self.nodes.len() - 1;
                    self.nodes[node].children.insert(t.clone(), n);
                    n
                }
            };
            node = next;
        }
        if !self.nodes[node].concepts.contains(&concept) {
            self.nodes[node].concepts.push(concept);
            self.entries += 1;
        }
    }

    /// Greedy longest match starting at `tokens[start]`: returns the number
    /// of tokens consumed and the concepts of the longest prefix that ends on
    /// a term, or `None` when no term starts here.
    pub fn longest_match(&self, tokens: &[&str], start: usize) -> Option<(usize, &[ConceptId])> {
        let mut node = 0usize;
        let mut best: Option<(usize, usize)> = None; // (consumed, node)
        for (offset, t) in tokens[start..].iter().enumerate() {
            match self.nodes[node].children.get(*t) {
                Some(&n) => {
                    node = n;
                    if !self.nodes[n].concepts.is_empty() {
                        best = Some((offset + 1, n));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, n)| (len, self.nodes[n].concepts.as_slice()))
    }

    /// Exact lookup of a full token sequence.
    pub fn lookup(&self, tokens: &[&str]) -> &[ConceptId] {
        let mut node = 0usize;
        for t in tokens {
            match self.nodes[node].children.get(*t) {
                Some(&n) => node = n,
                None => return &[],
            }
        }
        &self.nodes[node].concepts
    }

    /// Number of distinct (token-sequence, concept) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of trie nodes (memory footprint indicator for benches).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaxonomyBuilder;
    use crate::concept::ConceptKind;

    fn trie() -> TokenTrie {
        let mut t = TokenTrie::new();
        t.insert_phrase("noise", ConceptId(1));
        t.insert_phrase("high noise", ConceptId(2));
        t.insert_phrase("high noise level", ConceptId(3));
        t.insert_phrase("Lüfter", ConceptId(4));
        t.insert_phrase("crackling sound", ConceptId(5));
        t
    }

    #[test]
    fn longest_match_prefers_longer() {
        let t = trie();
        let toks = ["high", "noise", "level", "rising"];
        let (len, cs) = t.longest_match(&toks, 0).unwrap();
        assert_eq!(len, 3);
        assert_eq!(cs, &[ConceptId(3)]);
    }

    #[test]
    fn falls_back_to_shorter_prefix() {
        let t = trie();
        // "high noise again": "high noise level" fails, "high noise" matches
        let toks = ["high", "noise", "again"];
        let (len, cs) = t.longest_match(&toks, 0).unwrap();
        assert_eq!(len, 2);
        assert_eq!(cs, &[ConceptId(2)]);
        // from offset 1 only "noise" matches
        let (len, cs) = t.longest_match(&toks, 1).unwrap();
        assert_eq!(len, 1);
        assert_eq!(cs, &[ConceptId(1)]);
    }

    #[test]
    fn no_match_returns_none() {
        let t = trie();
        assert!(t.longest_match(&["quiet"], 0).is_none());
        // "high" alone is a path but not a term
        assert!(t.longest_match(&["high"], 0).is_none());
        assert!(t.longest_match(&["high", "speed"], 0).is_none());
    }

    #[test]
    fn normalization_applies_on_insert() {
        let t = trie();
        assert_eq!(t.lookup(&["luefter"]), &[ConceptId(4)]);
        assert!(t.lookup(&["lüfter"]).is_empty()); // queries must be pre-normalized
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut t = trie();
        let before = t.len();
        t.insert_phrase("noise", ConceptId(1));
        assert_eq!(t.len(), before);
        // same phrase, second concept → both stored
        t.insert_phrase("noise", ConceptId(9));
        assert_eq!(t.lookup(&["noise"]), &[ConceptId(1), ConceptId(9)]);
    }

    #[test]
    fn empty_phrase_ignored() {
        let mut t = TokenTrie::new();
        t.insert_phrase("  ,, ", ConceptId(1));
        assert!(t.is_empty());
    }

    #[test]
    fn from_taxonomy_collects_all_languages() {
        let mut b = TaxonomyBuilder::new("t");
        let c = b.root(ConceptKind::Component, "Fan");
        b.term(c, Lang::En, "fan");
        b.term(c, Lang::De, "Lüfter");
        let s = b.root(ConceptKind::Symptom, "Melt");
        b.term(s, Lang::De, "durchgeschmort");
        let tax = b.build().unwrap();

        let trie = TokenTrie::from_taxonomy(&tax);
        assert_eq!(trie.len(), 3);
        assert_eq!(trie.lookup(&["fan"]), &[c]);
        assert_eq!(trie.lookup(&["luefter"]), &[c]);
        assert_eq!(trie.lookup(&["durchgeschmort"]), &[s]);

        let en_only = TokenTrie::from_taxonomy_lang(&tax, Lang::En);
        assert_eq!(en_only.len(), 1);
        assert!(en_only.lookup(&["luefter"]).is_empty());
    }

    #[test]
    fn node_count_reflects_sharing() {
        let t = trie();
        // root + shared prefixes: high->noise->level, noise, luefter,
        // crackling->sound = 1 + 3 + 1 + 1 + 2 = 8
        assert_eq!(t.node_count(), 8);
    }
}
