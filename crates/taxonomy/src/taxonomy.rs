//! The taxonomy container: arena of concepts with navigation and statistics.

use std::collections::HashMap;

use crate::concept::{Concept, ConceptId, ConceptKind, Lang, Term};
use crate::error::{Result, TaxonomyError};

/// An immutable, validated taxonomy. Build one with
/// [`crate::builder::TaxonomyBuilder`], load one from XML with
/// [`crate::xml::parse_taxonomy`], or generate one with
/// [`crate::synthetic::SyntheticTaxonomy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taxonomy {
    name: String,
    concepts: Vec<Concept>,
    by_id: HashMap<ConceptId, usize>,
    children: HashMap<ConceptId, Vec<ConceptId>>,
    roots: Vec<ConceptId>,
}

impl Taxonomy {
    /// Assemble and validate. Checks id uniqueness, parent existence, kind
    /// consistency along edges, acyclicity and non-empty names/terms.
    /// Concepts are stored sorted by id, so two taxonomies with the same
    /// content compare equal regardless of construction order (builder vs
    /// XML document order).
    pub fn new(name: impl Into<String>, mut concepts: Vec<Concept>) -> Result<Self> {
        concepts.sort_by_key(|c| c.id);
        let mut by_id = HashMap::with_capacity(concepts.len());
        for (i, c) in concepts.iter().enumerate() {
            if by_id.insert(c.id, i).is_some() {
                return Err(TaxonomyError::DuplicateId(c.id));
            }
            if c.name.trim().is_empty() || c.terms.iter().any(|t| t.text.trim().is_empty()) {
                return Err(TaxonomyError::EmptyName(c.id));
            }
        }
        let mut children: HashMap<ConceptId, Vec<ConceptId>> = HashMap::new();
        let mut roots = Vec::new();
        for c in &concepts {
            match c.parent {
                Some(p) => {
                    let pi = *by_id.get(&p).ok_or(TaxonomyError::MissingParent {
                        child: c.id,
                        parent: p,
                    })?;
                    if concepts[pi].kind != c.kind {
                        return Err(TaxonomyError::KindMismatch {
                            child: c.id,
                            parent: p,
                        });
                    }
                    children.entry(p).or_default().push(c.id);
                }
                None => roots.push(c.id),
            }
        }
        for list in children.values_mut() {
            list.sort_unstable();
        }
        roots.sort_unstable();

        // Cycle check: walk up from every node; path length > concept count
        // implies a cycle (parent edges cannot otherwise repeat).
        for c in &concepts {
            let mut cur = c.parent;
            let mut steps = 0usize;
            while let Some(p) = cur {
                if p == c.id {
                    return Err(TaxonomyError::Cycle(c.id));
                }
                steps += 1;
                if steps > concepts.len() {
                    return Err(TaxonomyError::Cycle(c.id));
                }
                cur = concepts[by_id[&p]].parent;
            }
        }

        Ok(Taxonomy {
            name: name.into(),
            concepts,
            by_id,
            children,
            roots,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Look up a concept.
    pub fn get(&self, id: ConceptId) -> Option<&Concept> {
        self.by_id.get(&id).map(|&i| &self.concepts[i])
    }

    /// All concepts in id order of insertion.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Top-level concepts (no parent), sorted by id.
    pub fn roots(&self) -> &[ConceptId] {
        &self.roots
    }

    /// Children of a node, sorted by id.
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Leaves: concepts without children.
    pub fn leaves(&self) -> impl Iterator<Item = &Concept> {
        self.concepts
            .iter()
            .filter(move |c| !self.children.contains_key(&c.id))
    }

    /// Walk ancestors from a node up to its root (exclusive of the node).
    pub fn ancestors(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut cur = self.get(id).and_then(|c| c.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.get(p).and_then(|c| c.parent);
        }
        out
    }

    /// The kind root above a node (or the node itself if it is a root).
    pub fn root_of(&self, id: ConceptId) -> Option<ConceptId> {
        let mut cur = id;
        loop {
            let c = self.get(cur)?;
            match c.parent {
                Some(p) => cur = p,
                None => return Some(cur),
            }
        }
    }

    /// Number of *distinct leaf concepts* that carry at least one term in the
    /// given language — the statistic the paper reports ("about 1.800 / 1.900
    /// distinct concepts in German and English").
    pub fn concept_count(&self, lang: Lang) -> usize {
        self.leaves().filter(|c| c.has_lang(lang)).count()
    }

    /// Total number of surface terms in a language (synonym mass).
    pub fn term_count(&self, lang: Lang) -> usize {
        self.concepts.iter().map(|c| c.terms_in(lang).count()).sum()
    }

    /// All (term, concept) pairs, used to feed the annotation trie.
    pub fn term_entries(&self) -> impl Iterator<Item = (&Term, &Concept)> {
        self.concepts
            .iter()
            .flat_map(|c| c.terms.iter().map(move |t| (t, c)))
    }

    /// Concepts of a given kind.
    pub fn of_kind(&self, kind: ConceptKind) -> impl Iterator<Item = &Concept> {
        self.concepts.iter().filter(move |c| c.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Term;

    fn concept(
        id: u32,
        kind: ConceptKind,
        name: &str,
        parent: Option<u32>,
        terms: &[(&str, Lang)],
    ) -> Concept {
        Concept {
            id: ConceptId(id),
            kind,
            name: name.into(),
            parent: parent.map(ConceptId),
            terms: terms
                .iter()
                .map(|(t, l)| Term::new(*l, (*t).to_owned()))
                .collect(),
        }
    }

    fn small() -> Taxonomy {
        Taxonomy::new(
            "test",
            vec![
                concept(1, ConceptKind::Symptom, "Noise", None, &[]),
                concept(2, ConceptKind::Symptom, "HighNoise", Some(1), &[]),
                concept(
                    3,
                    ConceptKind::Symptom,
                    "Squeak",
                    Some(2),
                    &[("squeak", Lang::En), ("quietschen", Lang::De)],
                ),
                concept(
                    4,
                    ConceptKind::Symptom,
                    "Screech",
                    Some(2),
                    &[("screech", Lang::En)],
                ),
                concept(
                    5,
                    ConceptKind::Component,
                    "Radio",
                    None,
                    &[("radio", Lang::En), ("radio", Lang::De)],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn navigation() {
        let t = small();
        assert_eq!(t.len(), 5);
        assert_eq!(t.roots(), &[ConceptId(1), ConceptId(5)]);
        assert_eq!(t.children(ConceptId(2)), &[ConceptId(3), ConceptId(4)]);
        assert_eq!(t.children(ConceptId(3)), &[] as &[ConceptId]);
        assert_eq!(t.ancestors(ConceptId(3)), vec![ConceptId(2), ConceptId(1)]);
        assert_eq!(t.root_of(ConceptId(4)), Some(ConceptId(1)));
        assert_eq!(t.root_of(ConceptId(5)), Some(ConceptId(5)));
        assert_eq!(t.get(ConceptId(3)).unwrap().name, "Squeak");
        assert!(t.get(ConceptId(99)).is_none());
    }

    #[test]
    fn leaves_and_counts() {
        let t = small();
        let leaf_names: Vec<&str> = t.leaves().map(|c| c.name.as_str()).collect();
        assert_eq!(leaf_names, vec!["Squeak", "Screech", "Radio"]);
        assert_eq!(t.concept_count(Lang::En), 3);
        assert_eq!(t.concept_count(Lang::De), 2);
        assert_eq!(t.term_count(Lang::En), 3);
        assert_eq!(t.of_kind(ConceptKind::Component).count(), 1);
        assert_eq!(t.term_entries().count(), 5);
    }

    #[test]
    fn duplicate_id_rejected() {
        let r = Taxonomy::new(
            "x",
            vec![
                concept(1, ConceptKind::Symptom, "A", None, &[]),
                concept(1, ConceptKind::Symptom, "B", None, &[]),
            ],
        );
        assert_eq!(r.unwrap_err(), TaxonomyError::DuplicateId(ConceptId(1)));
    }

    #[test]
    fn missing_parent_rejected() {
        let r = Taxonomy::new(
            "x",
            vec![concept(1, ConceptKind::Symptom, "A", Some(9), &[])],
        );
        assert!(matches!(r, Err(TaxonomyError::MissingParent { .. })));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let r = Taxonomy::new(
            "x",
            vec![
                concept(1, ConceptKind::Symptom, "A", None, &[]),
                concept(2, ConceptKind::Component, "B", Some(1), &[]),
            ],
        );
        assert!(matches!(r, Err(TaxonomyError::KindMismatch { .. })));
    }

    #[test]
    fn cycle_rejected() {
        let r = Taxonomy::new(
            "x",
            vec![
                concept(1, ConceptKind::Symptom, "A", Some(2), &[]),
                concept(2, ConceptKind::Symptom, "B", Some(1), &[]),
            ],
        );
        assert!(matches!(r, Err(TaxonomyError::Cycle(_))));
        let r = Taxonomy::new(
            "x",
            vec![concept(1, ConceptKind::Symptom, "A", Some(1), &[])],
        );
        assert!(matches!(r, Err(TaxonomyError::Cycle(_))));
    }

    #[test]
    fn empty_name_rejected() {
        let r = Taxonomy::new("x", vec![concept(1, ConceptKind::Symptom, "  ", None, &[])]);
        assert!(matches!(r, Err(TaxonomyError::EmptyName(_))));
        let r = Taxonomy::new(
            "x",
            vec![concept(
                1,
                ConceptKind::Symptom,
                "A",
                None,
                &[("", Lang::En)],
            )],
        );
        assert!(matches!(r, Err(TaxonomyError::EmptyName(_))));
    }
}
