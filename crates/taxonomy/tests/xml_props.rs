//! Property tests: arbitrary taxonomies survive the custom XML format, the
//! trie, and the synonym expansion unchanged in meaning.

use proptest::collection::vec;
use proptest::prelude::*;

use qatk_taxonomy::prelude::*;

/// Strategy for term/label text including XML-hostile characters.
fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-ZäöüÄÖÜß0-9&<>'\" .-]{1,24}".prop_filter("non-blank", |s| !s.trim().is_empty())
}

/// One generated concept description:
/// (kind index, optional parent back-reference, name, terms).
type ConceptSpec = (usize, Option<usize>, String, Vec<(bool, String)>);

/// Strategy: a flat-ish random taxonomy description.
fn arb_spec() -> impl Strategy<Value = Vec<ConceptSpec>> {
    vec(
        (
            0usize..4,
            proptest::option::of(0usize..10_000),
            arb_text(),
            vec((any::<bool>(), arb_text()), 0..4),
        ),
        1..25,
    )
}

fn build(spec: &[ConceptSpec]) -> Taxonomy {
    let kinds = ConceptKind::ALL;
    let mut b = TaxonomyBuilder::new("prop");
    let mut ids: Vec<(ConceptId, usize)> = Vec::new(); // (id, kind index)
    for (kind_idx, parent_ref, name, terms) in spec {
        // resolve the parent among previously created nodes of the same kind
        let parent = parent_ref.and_then(|r| {
            let same_kind: Vec<ConceptId> = ids
                .iter()
                .filter(|(_, k)| k == kind_idx)
                .map(|(id, _)| *id)
                .collect();
            if same_kind.is_empty() {
                None
            } else {
                Some(same_kind[r % same_kind.len()])
            }
        });
        let id = match parent {
            Some(p) => b.child(p, name.clone()),
            None => b.root(kinds[*kind_idx], name.clone()),
        };
        for (is_de, text) in terms {
            b.term(id, if *is_de { Lang::De } else { Lang::En }, text.clone());
        }
        ids.push((id, *kind_idx));
    }
    b.build().expect("builder output is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_roundtrip_preserves_taxonomy(spec in arb_spec()) {
        let tax = build(&spec);
        let xml = write_taxonomy(&tax);
        let parsed = parse_taxonomy(&xml).expect("generated XML parses");
        prop_assert_eq!(parsed, tax);
    }

    #[test]
    fn trie_finds_every_single_word_term(spec in arb_spec()) {
        let tax = build(&spec);
        let trie = TokenTrie::from_taxonomy(&tax);
        for (term, concept) in tax.term_entries() {
            let toks = normalize_phrase(&term.text);
            if toks.is_empty() {
                continue;
            }
            let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
            prop_assert!(
                trie.lookup(&refs).contains(&concept.id),
                "term `{}` of {} not found",
                term.text,
                concept.id
            );
        }
    }

    #[test]
    fn expansion_never_loses_terms(spec in arb_spec()) {
        let tax = build(&spec);
        let (expanded, stats) = expand_taxonomy(&tax, &ExpansionConfig::default()).unwrap();
        prop_assert_eq!(expanded.len(), tax.len());
        let before: usize = tax.concepts().iter().map(|c| c.terms.len()).sum();
        let after: usize = expanded.concepts().iter().map(|c| c.terms.len()).sum();
        prop_assert_eq!(after, before + stats.added_terms);
        prop_assert!(after >= before);
        // structure is preserved
        for c in tax.concepts() {
            let e = expanded.get(c.id).unwrap();
            prop_assert_eq!(e.parent, c.parent);
            prop_assert_eq!(e.kind, c.kind);
        }
    }

    #[test]
    fn ancestors_terminate_and_root_is_stable(spec in arb_spec()) {
        let tax = build(&spec);
        for c in tax.concepts() {
            let anc = tax.ancestors(c.id);
            prop_assert!(anc.len() < tax.len());
            let root = tax.root_of(c.id).unwrap();
            prop_assert!(tax.get(root).unwrap().parent.is_none());
            match anc.last() {
                Some(&top) => prop_assert_eq!(top, root),
                None => prop_assert_eq!(root, c.id),
            }
        }
    }
}
