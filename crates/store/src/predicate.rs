//! Predicate AST evaluated against rows during queries.
//!
//! Predicates reference columns by *position*; the [`crate::query`] builder
//! resolves names to positions against a table schema so that evaluation in
//! the scan loop is allocation-free and branch-cheap.

use crate::row::Row;
use crate::value::Value;

/// A boolean condition over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    /// Column equals value. NULL equals NULL under the engine's total order.
    Eq(usize, Value),
    /// Column differs from value.
    Ne(usize, Value),
    Lt(usize, Value),
    Le(usize, Value),
    Gt(usize, Value),
    Ge(usize, Value),
    /// Column in `[lo, hi]`, inclusive.
    Between(usize, Value, Value),
    /// Column equals one of the listed values.
    InSet(usize, Vec<Value>),
    /// Text column contains the given substring (case-sensitive), like SQL
    /// `LIKE '%needle%'`. False for non-text values and NULL.
    Contains(usize, String),
    /// Column is NULL.
    IsNull(usize),
    /// Column is not NULL.
    NotNull(usize),
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a row. Out-of-range columns evaluate to false, which
    /// cannot happen for predicates built through the query builder.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => row.get(*c).is_some_and(|x| x == v),
            Predicate::Ne(c, v) => row.get(*c).is_some_and(|x| x != v),
            Predicate::Lt(c, v) => row.get(*c).is_some_and(|x| x < v),
            Predicate::Le(c, v) => row.get(*c).is_some_and(|x| x <= v),
            Predicate::Gt(c, v) => row.get(*c).is_some_and(|x| x > v),
            Predicate::Ge(c, v) => row.get(*c).is_some_and(|x| x >= v),
            Predicate::Between(c, lo, hi) => row.get(*c).is_some_and(|x| x >= lo && x <= hi),
            Predicate::InSet(c, vs) => row.get(*c).is_some_and(|x| vs.contains(x)),
            Predicate::Contains(c, needle) => row
                .get(*c)
                .and_then(Value::as_text)
                .is_some_and(|s| s.contains(needle.as_str())),
            Predicate::IsNull(c) => row.get(*c).is_some_and(Value::is_null),
            Predicate::NotNull(c) => row.get(*c).is_some_and(|x| !x.is_null()),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(row)),
            Predicate::Not(p) => !p.eval(row),
        }
    }

    /// If this predicate (or a conjunct of it) pins `col` to a single value,
    /// return that value — used by the planner to route through an index.
    pub fn pinned_value(&self, col: usize) -> Option<&Value> {
        match self {
            Predicate::Eq(c, v) if *c == col => Some(v),
            Predicate::And(ps) => ps.iter().find_map(|p| p.pinned_value(col)),
            _ => None,
        }
    }

    /// If this predicate (or a conjunct) restricts `col` to an inclusive
    /// range, return `(lo, hi)`; used to exploit ordered indexes.
    pub fn pinned_range(&self, col: usize) -> Option<(Value, Value)> {
        match self {
            Predicate::Between(c, lo, hi) if *c == col => Some((lo.clone(), hi.clone())),
            Predicate::Eq(c, v) if *c == col => Some((v.clone(), v.clone())),
            Predicate::And(ps) => ps.iter().find_map(|p| p.pinned_range(col)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn r() -> Row {
        row![5i64, "supplier report: relay melted", Value::Null]
    }

    #[test]
    fn comparisons() {
        let row = r();
        assert!(Predicate::Eq(0, Value::Int(5)).eval(&row));
        assert!(Predicate::Ne(0, Value::Int(6)).eval(&row));
        assert!(Predicate::Lt(0, Value::Int(6)).eval(&row));
        assert!(Predicate::Le(0, Value::Int(5)).eval(&row));
        assert!(Predicate::Gt(0, Value::Int(4)).eval(&row));
        assert!(Predicate::Ge(0, Value::Int(5)).eval(&row));
        assert!(Predicate::Between(0, Value::Int(1), Value::Int(9)).eval(&row));
        assert!(!Predicate::Between(0, Value::Int(6), Value::Int(9)).eval(&row));
    }

    #[test]
    fn set_and_text() {
        let row = r();
        assert!(Predicate::InSet(0, vec![Value::Int(1), Value::Int(5)]).eval(&row));
        assert!(!Predicate::InSet(0, vec![Value::Int(1)]).eval(&row));
        assert!(Predicate::Contains(1, "relay".into()).eval(&row));
        assert!(!Predicate::Contains(1, "Relay".into()).eval(&row));
        // Contains over a non-text column is false, not an error.
        assert!(!Predicate::Contains(0, "5".into()).eval(&row));
    }

    #[test]
    fn null_checks() {
        let row = r();
        assert!(Predicate::IsNull(2).eval(&row));
        assert!(!Predicate::IsNull(0).eval(&row));
        assert!(Predicate::NotNull(1).eval(&row));
    }

    #[test]
    fn boolean_composition() {
        let row = r();
        let p = Predicate::And(vec![
            Predicate::Eq(0, Value::Int(5)),
            Predicate::Contains(1, "melted".into()),
        ]);
        assert!(p.eval(&row));
        let q = Predicate::Or(vec![Predicate::Eq(0, Value::Int(99)), Predicate::IsNull(2)]);
        assert!(q.eval(&row));
        assert!(!Predicate::Not(Box::new(q)).eval(&row));
        assert!(Predicate::True.eval(&row));
        assert!(Predicate::And(vec![]).eval(&row)); // vacuous truth
        assert!(!Predicate::Or(vec![]).eval(&row));
    }

    #[test]
    fn out_of_range_column_is_false() {
        let row = r();
        assert!(!Predicate::Eq(42, Value::Int(1)).eval(&row));
    }

    #[test]
    fn pinned_value_extraction() {
        let p = Predicate::And(vec![
            Predicate::Contains(1, "x".into()),
            Predicate::Eq(0, Value::Int(5)),
        ]);
        assert_eq!(p.pinned_value(0), Some(&Value::Int(5)));
        assert_eq!(p.pinned_value(1), None);
        assert_eq!(Predicate::True.pinned_value(0), None);
    }

    #[test]
    fn pinned_range_extraction() {
        let p = Predicate::Between(0, Value::Int(2), Value::Int(8));
        assert_eq!(p.pinned_range(0), Some((Value::Int(2), Value::Int(8))));
        let eq = Predicate::Eq(0, Value::Int(3));
        assert_eq!(eq.pinned_range(0), Some((Value::Int(3), Value::Int(3))));
        let nested = Predicate::And(vec![p]);
        assert!(nested.pinned_range(0).is_some());
        assert!(nested.pinned_range(1).is_none());
    }
}
