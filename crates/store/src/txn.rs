//! Undo-log transactions over a [`Database`].
//!
//! The engine supports one active transaction per database (QATK's writers
//! serialize through [`crate::db::SharedDatabase`]'s write lock, so a single
//! in-flight transaction matches the actual concurrency model). DML performed
//! through `Database::{insert, update, delete}` records inverse operations;
//! `rollback` replays them in reverse. DDL is non-transactional by design.

use crate::db::Database;
use crate::error::{Result, StoreError};
use crate::row::Row;
use crate::value::Value;

/// Inverse of one DML operation.
#[derive(Debug, Clone)]
pub(crate) enum UndoOp {
    /// Undo an insert: remove the row again.
    UnInsert { table: String, pk: Value },
    /// Undo a delete: put the row back.
    ReInsert { table: String, row: Row },
    /// Undo an update: restore the previous row image.
    Restore { table: String, pk: Value, row: Row },
}

impl Database {
    /// Begin a transaction. Errors if one is already active.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(StoreError::TransactionActive);
        }
        self.txn = Some(Vec::new());
        Ok(())
    }

    /// True while a transaction is active.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Commit: discard the undo log, making all changes final.
    pub fn commit(&mut self) -> Result<()> {
        self.txn
            .take()
            .map(|_| crate::metrics::metrics().txn_commits_total.inc())
            .ok_or(StoreError::NoActiveTransaction)
    }

    /// Roll back: undo every change of the active transaction, newest first.
    /// A damaged undo log (e.g. a table dropped mid-transaction — DDL is
    /// non-transactional) surfaces as an error instead of a panic, so a
    /// recovery path that rolls back never aborts the process.
    pub fn rollback(&mut self) -> Result<()> {
        let log = self.txn.take().ok_or(StoreError::NoActiveTransaction)?;
        crate::metrics::metrics().txn_rollbacks_total.inc();
        self.undo_all(log)
    }

    /// Apply a batch of undo operations, newest first, propagating failures.
    /// Also used by `LoggedDatabase` to unstage a mutation whose WAL append
    /// failed (write-ahead ordering: nothing stays applied unless logged).
    pub(crate) fn undo_all(&mut self, log: Vec<UndoOp>) -> Result<()> {
        for op in log.into_iter().rev() {
            match op {
                UndoOp::UnInsert { table, pk } => {
                    self.table_mut(&table)?.delete(&pk)?;
                }
                UndoOp::ReInsert { table, row } => {
                    self.table_mut(&table)?.insert(row)?;
                }
                UndoOp::Restore { table, pk, row } => {
                    self.table_mut(&table)?.update(&pk, row)?;
                }
            }
        }
        Ok(())
    }

    /// Run `f` inside a transaction: commit on `Ok`, roll back on `Err`.
    pub fn transaction<R>(&mut self, f: impl FnOnce(&mut Database) -> Result<R>) -> Result<R> {
        self.begin()?;
        match f(self) {
            Ok(r) => {
                self.commit()?;
                Ok(r)
            }
            Err(e) => {
                self.rollback()?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap();
        db.create_table("t", schema).unwrap();
        db.insert("t", row![1i64, "one"]).unwrap();
        db.insert("t", row![2i64, "two"]).unwrap();
        db
    }

    #[test]
    fn commit_keeps_changes() {
        let mut db = db();
        db.begin().unwrap();
        db.insert("t", row![3i64, "three"]).unwrap();
        db.delete("t", &Value::Int(1)).unwrap();
        db.commit().unwrap();
        assert_eq!(db.total_rows(), 2);
        assert!(db.get("t", &Value::Int(3)).unwrap().is_some());
        assert!(db.get("t", &Value::Int(1)).unwrap().is_none());
    }

    #[test]
    fn rollback_restores_inserts_deletes_updates() {
        let mut db = db();
        db.begin().unwrap();
        db.insert("t", row![3i64, "three"]).unwrap();
        db.update("t", &Value::Int(2), row![2i64, "TWO"]).unwrap();
        db.delete("t", &Value::Int(1)).unwrap();
        db.rollback().unwrap();

        assert_eq!(db.total_rows(), 2);
        assert!(db.get("t", &Value::Int(3)).unwrap().is_none());
        assert_eq!(
            db.get("t", &Value::Int(2))
                .unwrap()
                .unwrap()
                .get(1)
                .and_then(Value::as_text),
            Some("two")
        );
        assert!(db.get("t", &Value::Int(1)).unwrap().is_some());
    }

    #[test]
    fn rollback_handles_interleaved_ops_on_same_key() {
        let mut db = db();
        db.begin().unwrap();
        // delete then re-insert the same pk, then update it
        db.delete("t", &Value::Int(1)).unwrap();
        db.insert("t", row![1i64, "one-new"]).unwrap();
        db.update("t", &Value::Int(1), row![1i64, "one-newer"])
            .unwrap();
        db.rollback().unwrap();
        assert_eq!(
            db.get("t", &Value::Int(1))
                .unwrap()
                .unwrap()
                .get(1)
                .and_then(Value::as_text),
            Some("one")
        );
    }

    #[test]
    fn transaction_states_guarded() {
        let mut db = db();
        assert!(matches!(db.commit(), Err(StoreError::NoActiveTransaction)));
        assert!(matches!(
            db.rollback(),
            Err(StoreError::NoActiveTransaction)
        ));
        db.begin().unwrap();
        assert!(db.in_transaction());
        assert!(matches!(db.begin(), Err(StoreError::TransactionActive)));
        db.commit().unwrap();
        assert!(!db.in_transaction());
    }

    #[test]
    fn closure_transaction_commits_on_ok() {
        let mut db = db();
        let pk = db
            .transaction(|db| db.insert("t", row![9i64, "nine"]))
            .unwrap();
        assert_eq!(pk, Value::Int(9));
        assert!(db.get("t", &Value::Int(9)).unwrap().is_some());
        assert!(!db.in_transaction());
    }

    #[test]
    fn closure_transaction_rolls_back_on_err() {
        let mut db = db();
        let r = db.transaction(|db| {
            db.insert("t", row![9i64, "nine"])?;
            // duplicate key fails the transaction
            db.insert("t", row![1i64, "dup"])?;
            Ok(())
        });
        assert!(r.is_err());
        assert!(db.get("t", &Value::Int(9)).unwrap().is_none());
        assert!(!db.in_transaction());
    }

    #[test]
    fn rollback_with_damaged_undo_log_errors_instead_of_panicking() {
        let mut db = db();
        db.begin().unwrap();
        db.insert("t", row![3i64, "three"]).unwrap();
        // DDL is non-transactional: dropping the table invalidates the undo
        // log. Rollback must report that, not panic mid-recovery.
        db.drop_table("t").unwrap();
        assert!(matches!(db.rollback(), Err(StoreError::NoSuchTable(_))));
        assert!(!db.in_transaction());
    }

    #[test]
    fn operations_without_txn_do_not_log() {
        let mut db = db();
        db.insert("t", row![10i64, "ten"]).unwrap();
        // no panic / no log: begin after the fact sees a clean state
        db.begin().unwrap();
        db.rollback().unwrap();
        assert!(db.get("t", &Value::Int(10)).unwrap().is_some());
    }
}
