//! Zero-dependency failpoints for crash-safety testing (fail-rs style).
//!
//! A *failpoint* is a named site inside the storage engine's durability
//! paths where tests can inject a failure to simulate a crash at exactly
//! that point: [`check`] returns [`StoreError::Injected`], the caller
//! unwinds without executing the protected action, and the on-disk state is
//! left exactly as a kill at that instant would leave it. The crash-point
//! recovery harness (`tests/store_durability.rs` at the workspace root)
//! arms every site in turn and asserts that recovery restores the
//! acknowledged prefix.
//!
//! ## Sites
//!
//! | site | crash simulated |
//! |------|-----------------|
//! | `wal.append.before_write`    | before any log byte reaches the file |
//! | `wal.append.before_sync`     | log bytes in the OS page cache, not fsynced |
//! | `wal.append.after_sync`      | record durable, operation not yet acknowledged |
//! | `persist.write_tmp`          | before the snapshot temp file is written |
//! | `persist.sync_tmp`           | temp file written but not fsynced |
//! | `persist.rename`             | temp file durable, rename not executed |
//! | `checkpoint.begin`           | before anything happens |
//! | `checkpoint.mid_rotate`      | log sealed + rotated, snapshot not yet written |
//! | `checkpoint.before_truncate` | new snapshot durable, old segments not yet deleted |
//!
//! ## Overhead
//!
//! Without the `failpoints` cargo feature every [`check`] compiles to an
//! inlined `Ok(())` — release builds carry zero overhead. With the feature
//! enabled but no site armed, a check is one relaxed atomic load.
//!
//! ## One-shot semantics
//!
//! An armed site fires once — after an optional number of free passes — and
//! disarms itself, so recovery code running in the same process does not
//! re-trip the site that "crashed" the writer. Tests should still call
//! [`disarm_all`] in their cleanup to drop sites that never fired.

#[cfg(not(feature = "failpoints"))]
use crate::error::Result;

/// Pass through an armed failpoint. Compiled to `Ok(())` without the
/// `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_site: &str) -> Result<()> {
    Ok(())
}

#[cfg(feature = "failpoints")]
pub use enabled::{arm, armed, check, disarm, disarm_all};

#[cfg(feature = "failpoints")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    use crate::error::{Result, StoreError};

    /// Number of currently armed sites — the fast path reads only this.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    /// site name → remaining free passes before it fires.
    fn sites() -> MutexGuard<'static, HashMap<String, usize>> {
        static SITES: OnceLock<Mutex<HashMap<String, usize>>> = OnceLock::new();
        SITES
            .get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm `site` to fail its `(skip + 1)`-th [`check`] (so `skip = 0` fails
    /// the next pass). One-shot: the site disarms itself when it fires.
    pub fn arm(site: &str, skip: usize) {
        let mut map = sites();
        map.insert(site.to_owned(), skip);
        ARMED.store(map.len(), Ordering::Relaxed);
    }

    /// Disarm one site (no-op if it is not armed).
    pub fn disarm(site: &str) {
        let mut map = sites();
        map.remove(site);
        ARMED.store(map.len(), Ordering::Relaxed);
    }

    /// Disarm every site.
    pub fn disarm_all() {
        let mut map = sites();
        map.clear();
        ARMED.store(0, Ordering::Relaxed);
    }

    /// Number of currently armed sites.
    pub fn armed() -> usize {
        ARMED.load(Ordering::Relaxed)
    }

    /// Pass through `site`: errors with [`StoreError::Injected`] if the site
    /// is armed and out of free passes, disarming it in the same step.
    pub fn check(site: &str) -> Result<()> {
        if ARMED.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let mut map = sites();
        match map.get_mut(site) {
            None => Ok(()),
            Some(0) => {
                map.remove(site);
                ARMED.store(map.len(), Ordering::Relaxed);
                Err(StoreError::Injected(site.to_owned()))
            }
            Some(n) => {
                *n -= 1;
                Ok(())
            }
        }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::error::StoreError;

    #[test]
    fn one_shot_with_free_passes() {
        disarm_all();
        arm("test.site", 2);
        assert_eq!(armed(), 1);
        assert!(check("test.site").is_ok());
        assert!(check("other.site").is_ok());
        assert!(check("test.site").is_ok());
        assert!(matches!(
            check("test.site"),
            Err(StoreError::Injected(ref s)) if s == "test.site"
        ));
        // fired once, then disarmed
        assert_eq!(armed(), 0);
        assert!(check("test.site").is_ok());
    }

    #[test]
    fn disarm_clears_without_firing() {
        disarm_all();
        arm("a", 0);
        arm("b", 0);
        assert_eq!(armed(), 2);
        disarm("a");
        assert!(check("a").is_ok());
        assert!(check("b").is_err());
        disarm_all();
        assert_eq!(armed(), 0);
    }
}
