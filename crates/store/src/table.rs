//! A single table: slotted row heap, primary-key map, unique-constraint maps
//! and named secondary indexes.

use std::collections::HashMap;

use crate::error::{Result, StoreError};
use crate::index::{Index, IndexKind};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A named secondary index bound to one column.
#[derive(Debug, Clone)]
struct NamedIndex {
    column: usize,
    index: Index,
}

/// One table.
///
/// Rows live in a slotted heap (`Vec<Option<Row>>` with a free list) so that
/// slot numbers — which the indexes reference — stay stable under deletes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Option<Row>>,
    free: Vec<usize>,
    live: usize,
    pk_map: HashMap<Value, usize>,
    /// column index -> value -> slot, for UNIQUE columns.
    unique_maps: HashMap<usize, HashMap<Value, usize>>,
    indexes: HashMap<String, NamedIndex>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let unique_maps = schema
            .unique_columns()
            .map(|c| (c, HashMap::new()))
            .collect();
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            free: Vec::new(),
            live: 0,
            pk_map: HashMap::new(),
            unique_maps,
            indexes: HashMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row; returns the primary key value on success.
    pub fn insert(&mut self, row: Row) -> Result<Value> {
        self.schema.check_row(row.values())?;
        let pk = row.values()[self.schema.pk_index()].clone();
        if self.pk_map.contains_key(&pk) {
            return Err(StoreError::DuplicateKey {
                table: self.name.clone(),
                key: pk.to_string(),
            });
        }
        for (&col, map) in &self.unique_maps {
            let v = &row.values()[col];
            if !v.is_null() && map.contains_key(v) {
                return Err(StoreError::UniqueViolation {
                    column: self.schema.columns()[col].name.clone(),
                    value: v.to_string(),
                });
            }
        }

        let slot = match self.free.pop() {
            Some(s) => {
                self.rows[s] = Some(row);
                s
            }
            None => {
                self.rows.push(Some(row));
                self.rows.len() - 1
            }
        };
        let row_ref = self.rows[slot].as_ref().expect("just inserted");
        self.pk_map.insert(pk.clone(), slot);
        for (&col, map) in &mut self.unique_maps {
            let v = &row_ref.values()[col];
            if !v.is_null() {
                map.insert(v.clone(), slot);
            }
        }
        for ni in self.indexes.values_mut() {
            ni.index.insert(row_ref.values()[ni.column].clone(), slot);
        }
        self.live += 1;
        Ok(pk)
    }

    /// Fetch a row by primary key.
    pub fn get(&self, pk: &Value) -> Option<&Row> {
        self.pk_map
            .get(pk)
            .and_then(|&slot| self.rows[slot].as_ref())
    }

    /// Delete by primary key, returning the removed row.
    pub fn delete(&mut self, pk: &Value) -> Result<Row> {
        let slot = *self.pk_map.get(pk).ok_or_else(|| StoreError::NoSuchKey {
            table: self.name.clone(),
            key: pk.to_string(),
        })?;
        let row = self.rows[slot].take().expect("pk map points at live row");
        self.pk_map.remove(pk);
        for (&col, map) in &mut self.unique_maps {
            let v = &row.values()[col];
            if !v.is_null() {
                map.remove(v);
            }
        }
        for ni in self.indexes.values_mut() {
            ni.index.remove(&row.values()[ni.column], slot);
        }
        self.free.push(slot);
        self.live -= 1;
        Ok(row)
    }

    /// Replace the row with primary key `pk` by `new`, which must carry the
    /// same primary key. Returns the previous row.
    pub fn update(&mut self, pk: &Value, new: Row) -> Result<Row> {
        self.schema.check_row(new.values())?;
        let new_pk = &new.values()[self.schema.pk_index()];
        if new_pk != pk {
            // A PK change is a delete+insert from the caller's perspective;
            // keep the operation primitive and predictable.
            return Err(StoreError::InvalidSchema(format!(
                "update may not change the primary key ({pk} -> {new_pk})"
            )));
        }
        let slot = *self.pk_map.get(pk).ok_or_else(|| StoreError::NoSuchKey {
            table: self.name.clone(),
            key: pk.to_string(),
        })?;
        // Check unique constraints against *other* rows.
        for (&col, map) in &self.unique_maps {
            let v = &new.values()[col];
            if !v.is_null() {
                if let Some(&other) = map.get(v) {
                    if other != slot {
                        return Err(StoreError::UniqueViolation {
                            column: self.schema.columns()[col].name.clone(),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
        let old = self.rows[slot].replace(new).expect("live slot");
        let new_ref = self.rows[slot].as_ref().expect("just stored");
        for (&col, map) in &mut self.unique_maps {
            let ov = &old.values()[col];
            let nv = &new_ref.values()[col];
            if ov != nv {
                if !ov.is_null() {
                    map.remove(ov);
                }
                if !nv.is_null() {
                    map.insert(nv.clone(), slot);
                }
            }
        }
        for ni in self.indexes.values_mut() {
            let ov = &old.values()[ni.column];
            let nv = &new_ref.values()[ni.column];
            if ov != nv {
                ni.index.remove(ov, slot);
                ni.index.insert(nv.clone(), slot);
            }
        }
        Ok(old)
    }

    /// Iterate over live rows in slot order.
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter().filter_map(Option::as_ref)
    }

    /// Create a named secondary index on `column`, backfilled from existing
    /// rows.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        column: &str,
        kind: IndexKind,
    ) -> Result<()> {
        let index_name = index_name.into();
        if self.indexes.contains_key(&index_name) {
            return Err(StoreError::IndexExists {
                table: self.name.clone(),
                index: index_name,
            });
        }
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: self.name.clone(),
                column: column.to_owned(),
            })?;
        let mut index = Index::new(kind);
        for (slot, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                index.insert(row.values()[col].clone(), slot);
            }
        }
        self.indexes
            .insert(index_name, NamedIndex { column: col, index });
        Ok(())
    }

    /// Drop a secondary index.
    pub fn drop_index(&mut self, index_name: &str) -> Result<()> {
        self.indexes
            .remove(index_name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchIndex {
                table: self.name.clone(),
                index: index_name.to_owned(),
            })
    }

    /// Names of the secondary indexes, sorted for determinism.
    pub fn index_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.indexes.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Find an index over the given column position, if any. Preference is
    /// deterministic (sorted by index name).
    fn index_on_column(&self, col: usize) -> Option<&Index> {
        let mut candidates: Vec<(&String, &NamedIndex)> = self
            .indexes
            .iter()
            .filter(|(_, ni)| ni.column == col)
            .collect();
        candidates.sort_by_key(|(name, _)| name.as_str());
        candidates.first().map(|(_, ni)| &ni.index)
    }

    /// Rows whose `column` equals `key`, via index when available, else scan.
    pub fn lookup(&self, column: &str, key: &Value) -> Result<Vec<&Row>> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: self.name.clone(),
                column: column.to_owned(),
            })?;
        if col == self.schema.pk_index() {
            return Ok(self.get(key).into_iter().collect());
        }
        if let Some(ix) = self.index_on_column(col) {
            let mut slots = ix.lookup(key).to_vec();
            slots.sort_unstable();
            return Ok(slots
                .into_iter()
                .filter_map(|s| self.rows[s].as_ref())
                .collect());
        }
        Ok(self.scan().filter(|r| &r.values()[col] == key).collect())
    }

    /// Access point used by the query planner: slots matching an equality on
    /// a column, if an index can answer it.
    pub(crate) fn planned_slots(&self, col: usize, key: &Value) -> Option<Vec<usize>> {
        if col == self.schema.pk_index() {
            return Some(self.pk_map.get(key).copied().into_iter().collect());
        }
        if let Some(map) = self.unique_maps.get(&col) {
            return Some(map.get(key).copied().into_iter().collect());
        }
        self.index_on_column(col).map(|ix| ix.lookup(key).to_vec())
    }

    /// Slots matching a range on a column via an ordered index, if available.
    pub(crate) fn planned_range_slots(
        &self,
        col: usize,
        lo: &Value,
        hi: &Value,
    ) -> Option<Vec<usize>> {
        self.index_on_column(col).and_then(|ix| ix.range(lo, hi))
    }

    pub(crate) fn row_at(&self, slot: usize) -> Option<&Row> {
        self.rows.get(slot).and_then(Option::as_ref)
    }

    /// Remove all rows but keep schema and (empty) indexes.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.free.clear();
        self.pk_map.clear();
        for map in self.unique_maps.values_mut() {
            map.clear();
        }
        for ni in self.indexes.values_mut() {
            ni.index.clear();
        }
        self.live = 0;
    }

    /// (index name, column name, kind) triples describing secondary indexes,
    /// used by snapshot persistence.
    pub fn index_specs(&self) -> Vec<(String, String, IndexKind)> {
        let mut specs: Vec<(String, String, IndexKind)> = self
            .indexes
            .iter()
            .map(|(name, ni)| {
                (
                    name.clone(),
                    self.schema.columns()[ni.column].name.clone(),
                    ni.index.kind(),
                )
            })
            .collect();
        specs.sort();
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn parts_table() -> Table {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part_id", DataType::Text)
            .col("error_code", DataType::Text)
            .col_null("note", DataType::Text)
            .build()
            .unwrap();
        Table::new("bundles", schema)
    }

    #[test]
    fn insert_get_len() {
        let mut t = parts_table();
        t.insert(row![1i64, "P01", "E100", Value::Null]).unwrap();
        t.insert(row![2i64, "P01", "E200", "ok"]).unwrap();
        assert_eq!(t.len(), 2);
        let r = t.get(&Value::Int(1)).unwrap();
        assert_eq!(r.get(2).and_then(Value::as_text), Some("E100"));
        assert!(t.get(&Value::Int(42)).is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = parts_table();
        t.insert(row![1i64, "P01", "E100", Value::Null]).unwrap();
        let err = t.insert(row![1i64, "P02", "E101", Value::Null]);
        assert!(matches!(err, Err(StoreError::DuplicateKey { .. })));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_and_slot_reuse() {
        let mut t = parts_table();
        t.insert(row![1i64, "P01", "E100", Value::Null]).unwrap();
        t.insert(row![2i64, "P02", "E200", Value::Null]).unwrap();
        let removed = t.delete(&Value::Int(1)).unwrap();
        assert_eq!(removed.get(1).and_then(Value::as_text), Some("P01"));
        assert_eq!(t.len(), 1);
        assert!(t.get(&Value::Int(1)).is_none());
        // slot is reused
        t.insert(row![3i64, "P03", "E300", Value::Null]).unwrap();
        assert_eq!(t.rows.len(), 2);
        assert!(matches!(
            t.delete(&Value::Int(99)),
            Err(StoreError::NoSuchKey { .. })
        ));
    }

    #[test]
    fn update_replaces_and_guards_pk() {
        let mut t = parts_table();
        t.insert(row![1i64, "P01", "E100", Value::Null]).unwrap();
        let old = t
            .update(&Value::Int(1), row![1i64, "P01", "E999", "re-coded"])
            .unwrap();
        assert_eq!(old.get(2).and_then(Value::as_text), Some("E100"));
        assert_eq!(
            t.get(&Value::Int(1))
                .unwrap()
                .get(2)
                .and_then(Value::as_text),
            Some("E999")
        );
        let err = t.update(&Value::Int(1), row![2i64, "P01", "E999", Value::Null]);
        assert!(err.is_err());
    }

    #[test]
    fn unique_constraint() {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col_unique("ref_no", DataType::Text)
            .build()
            .unwrap();
        let mut t = Table::new("refs", schema);
        t.insert(row![1i64, "R-001"]).unwrap();
        assert!(matches!(
            t.insert(row![2i64, "R-001"]),
            Err(StoreError::UniqueViolation { .. })
        ));
        t.insert(row![2i64, "R-002"]).unwrap();
        // updating a row to keep its own unique value is fine
        t.update(&Value::Int(2), row![2i64, "R-002"]).unwrap();
        // but stealing another row's value is not
        assert!(t.update(&Value::Int(2), row![2i64, "R-001"]).is_err());
        // after deleting row 1 its value is free again
        t.delete(&Value::Int(1)).unwrap();
        t.update(&Value::Int(2), row![2i64, "R-001"]).unwrap();
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = parts_table();
        for i in 0..10i64 {
            let part = if i % 2 == 0 { "P-even" } else { "P-odd" };
            t.insert(row![i, part, format!("E{i}"), Value::Null])
                .unwrap();
        }
        t.create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();
        assert_eq!(
            t.lookup("part_id", &Value::from("P-even")).unwrap().len(),
            5
        );

        // insert & delete keep the index fresh
        t.insert(row![100i64, "P-even", "E100x", Value::Null])
            .unwrap();
        assert_eq!(
            t.lookup("part_id", &Value::from("P-even")).unwrap().len(),
            6
        );
        t.delete(&Value::Int(0)).unwrap();
        assert_eq!(
            t.lookup("part_id", &Value::from("P-even")).unwrap().len(),
            5
        );

        // update moves rows between keys
        t.update(&Value::Int(1), row![1i64, "P-even", "E1", Value::Null])
            .unwrap();
        assert_eq!(
            t.lookup("part_id", &Value::from("P-even")).unwrap().len(),
            6
        );
        assert_eq!(t.lookup("part_id", &Value::from("P-odd")).unwrap().len(), 4);

        assert!(matches!(
            t.create_index("by_part", "part_id", IndexKind::Hash),
            Err(StoreError::IndexExists { .. })
        ));
        assert!(matches!(
            t.create_index("x", "ghost", IndexKind::Hash),
            Err(StoreError::NoSuchColumn { .. })
        ));
        assert_eq!(t.index_names(), vec!["by_part"]);
        t.drop_index("by_part").unwrap();
        assert!(t.drop_index("by_part").is_err());
    }

    #[test]
    fn lookup_without_index_scans() {
        let mut t = parts_table();
        t.insert(row![1i64, "P01", "E1", Value::Null]).unwrap();
        t.insert(row![2i64, "P02", "E2", Value::Null]).unwrap();
        let hits = t.lookup("error_code", &Value::from("E2")).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(t.lookup("ghost", &Value::Int(0)).is_err());
    }

    #[test]
    fn lookup_on_pk_column() {
        let mut t = parts_table();
        t.insert(row![1i64, "P01", "E1", Value::Null]).unwrap();
        let hits = t.lookup("id", &Value::Int(1)).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(t.lookup("id", &Value::Int(9)).unwrap().is_empty());
    }

    #[test]
    fn truncate_clears_everything() {
        let mut t = parts_table();
        t.create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();
        t.insert(row![1i64, "P01", "E1", Value::Null]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert!(t.get(&Value::Int(1)).is_none());
        assert!(t.lookup("part_id", &Value::from("P01")).unwrap().is_empty());
        // reinsert works after truncate
        t.insert(row![1i64, "P01", "E1", Value::Null]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn index_specs_reported() {
        let mut t = parts_table();
        t.create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();
        t.create_index("by_code", "error_code", IndexKind::Ordered)
            .unwrap();
        let specs = t.index_specs();
        assert_eq!(
            specs,
            vec![
                ("by_code".into(), "error_code".into(), IndexKind::Ordered),
                ("by_part".into(), "part_id".into(), IndexKind::Hash),
            ]
        );
    }
}
