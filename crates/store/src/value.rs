//! Dynamically typed cell values and their data types.
//!
//! The engine is schema-first: every column declares a [`DataType`] and every
//! stored [`Value`] must match it (or be [`Value::Null`] when the column is
//! nullable). Values provide a *total* order — including floats, via
//! [`f64::total_cmp`] — so they can key ordered indexes, and a consistent
//! `Hash` so they can key hash indexes.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    Blob,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Blob => "BLOB",
        };
        f.write_str(s)
    }
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style NULL. Compares less than every non-null value and equal to
    /// itself (the engine needs a total order for indexing, so unlike SQL,
    /// `Null == Null` here).
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Blob(Vec<u8>),
}

impl Value {
    /// The runtime type of this value, or `None` for NULL (NULL is typeless
    /// and admissible in any nullable column).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Blob(_) => Some(DataType::Blob),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value may be stored in a column of type `ty`.
    pub fn matches(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true, // NULL checked separately against nullability
            Some(t) => t == ty,
        }
    }

    /// Borrow as `i64` if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as `f64` if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Borrow as `&str` if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as `bool` if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as `&[u8]` if this is a `Blob`.
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Rank used to order values of *different* types: Null < Bool < Int <
    /// Float < Text < Blob. Within a type the natural order applies.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
            Value::Blob(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            // total_cmp-compatible: equal floats (same bits after
            // normalization below) hash equally. -0.0 and 0.0 differ under
            // total_cmp, so hashing raw bits is consistent with Ord.
            Value::Float(x) => x.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Blob(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Blob(b) => write!(f, "x'{}'", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Blob(b)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn data_types_of_values() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Text));
        assert_eq!(Value::Blob(vec![1]).data_type(), Some(DataType::Blob));
    }

    #[test]
    fn null_matches_every_type() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Blob,
        ] {
            assert!(Value::Null.matches(ty));
        }
        assert!(!Value::Int(1).matches(DataType::Text));
        assert!(Value::Int(1).matches(DataType::Int));
    }

    #[test]
    fn total_order_across_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Int(7),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(2.5),
            Value::Text("a".into()),
            Value::Text("b".into()),
            Value::Blob(vec![0]),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn nan_has_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::Int(42), Value::Int(42)),
            (Value::Text("x".into()), Value::from("x")),
            (Value::Float(1.5), Value::Float(1.5)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Float(0.5).as_float(), Some(0.5));
        assert_eq!(Value::from("t").as_text(), Some("t"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Blob(vec![9]).as_blob(), Some(&[9u8][..]));
        assert_eq!(Value::Int(3).as_text(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn option_conversion() {
        let some: Value = Some(5i64).into();
        let none: Value = Option::<i64>::None.into();
        assert_eq!(some, Value::Int(5));
        assert!(none.is_null());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::Blob(vec![0xab, 0x01]).to_string(), "x'ab01'");
    }
}
