//! Secondary indexes over a single column: hash (point lookups) and ordered
//! (range scans).
//!
//! Indexes map a column [`Value`] to the set of row slots holding it. A *slot*
//! is the table-internal position of a row; slots are stable across updates to
//! other rows, which keeps index maintenance local.

use std::collections::{BTreeMap, HashMap};

use crate::value::Value;

/// Kind of index to create.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexKind {
    /// Hash map: O(1) point lookups, no range queries.
    Hash,
    /// Ordered map: point and range lookups.
    Ordered,
}

/// A secondary index over one column.
#[derive(Debug, Clone)]
pub enum Index {
    Hash(HashMap<Value, Vec<usize>>),
    Ordered(BTreeMap<Value, Vec<usize>>),
}

impl Index {
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => Index::Hash(HashMap::new()),
            IndexKind::Ordered => Index::Ordered(BTreeMap::new()),
        }
    }

    pub fn kind(&self) -> IndexKind {
        match self {
            Index::Hash(_) => IndexKind::Hash,
            Index::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// Register `slot` under `key`.
    pub fn insert(&mut self, key: Value, slot: usize) {
        match self {
            Index::Hash(m) => m.entry(key).or_default().push(slot),
            Index::Ordered(m) => m.entry(key).or_default().push(slot),
        }
    }

    /// Remove the association of `slot` with `key`. No-op if absent.
    pub fn remove(&mut self, key: &Value, slot: usize) {
        fn drop_slot(slots: &mut Vec<usize>, slot: usize) -> bool {
            if let Some(pos) = slots.iter().position(|&s| s == slot) {
                slots.swap_remove(pos);
            }
            slots.is_empty()
        }
        match self {
            Index::Hash(m) => {
                if let Some(slots) = m.get_mut(key) {
                    if drop_slot(slots, slot) {
                        m.remove(key);
                    }
                }
            }
            Index::Ordered(m) => {
                if let Some(slots) = m.get_mut(key) {
                    if drop_slot(slots, slot) {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// Slots whose column equals `key`.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        match self {
            Index::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            Index::Ordered(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Slots whose column lies in `[lo, hi]` (inclusive). Only supported by
    /// ordered indexes; returns `None` for hash indexes so the planner can
    /// fall back to a scan.
    pub fn range(&self, lo: &Value, hi: &Value) -> Option<Vec<usize>> {
        match self {
            Index::Hash(_) => None,
            Index::Ordered(m) => {
                let mut out = Vec::new();
                for (_, slots) in m.range(lo.clone()..=hi.clone()) {
                    out.extend_from_slice(slots);
                }
                Some(out)
            }
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self {
            Index::Hash(m) => m.len(),
            Index::Ordered(m) => m.len(),
        }
    }

    /// Total number of (key, slot) entries.
    pub fn len(&self) -> usize {
        match self {
            Index::Hash(m) => m.values().map(Vec::len).sum(),
            Index::Ordered(m) => m.values().map(Vec::len).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (used when a table is truncated).
    pub fn clear(&mut self) {
        match self {
            Index::Hash(m) => m.clear(),
            Index::Ordered(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(kind: IndexKind) -> Index {
        let mut ix = Index::new(kind);
        ix.insert(Value::Int(10), 0);
        ix.insert(Value::Int(20), 1);
        ix.insert(Value::Int(10), 2);
        ix.insert(Value::Int(30), 3);
        ix
    }

    #[test]
    fn lookup_both_kinds() {
        for kind in [IndexKind::Hash, IndexKind::Ordered] {
            let ix = populated(kind);
            let mut hits = ix.lookup(&Value::Int(10)).to_vec();
            hits.sort_unstable();
            assert_eq!(hits, vec![0, 2]);
            assert!(ix.lookup(&Value::Int(99)).is_empty());
            assert_eq!(ix.len(), 4);
            assert_eq!(ix.distinct_keys(), 3);
            assert_eq!(ix.kind(), kind);
        }
    }

    #[test]
    fn remove_cleans_up() {
        for kind in [IndexKind::Hash, IndexKind::Ordered] {
            let mut ix = populated(kind);
            ix.remove(&Value::Int(10), 0);
            assert_eq!(ix.lookup(&Value::Int(10)), &[2]);
            ix.remove(&Value::Int(10), 2);
            assert!(ix.lookup(&Value::Int(10)).is_empty());
            assert_eq!(ix.distinct_keys(), 2);
            // removing a non-existent association is a no-op
            ix.remove(&Value::Int(10), 7);
            ix.remove(&Value::Int(999), 7);
        }
    }

    #[test]
    fn range_only_on_ordered() {
        let hash = populated(IndexKind::Hash);
        assert_eq!(hash.range(&Value::Int(0), &Value::Int(100)), None);

        let ord = populated(IndexKind::Ordered);
        let mut r = ord.range(&Value::Int(10), &Value::Int(20)).unwrap();
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2]);
        let r = ord.range(&Value::Int(25), &Value::Int(100)).unwrap();
        assert_eq!(r, vec![3]);
        let r = ord.range(&Value::Int(95), &Value::Int(100)).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut ix = populated(IndexKind::Ordered);
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.distinct_keys(), 0);
    }
}
