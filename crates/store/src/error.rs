//! Error type shared by every storage operation.

use std::fmt;

use crate::value::DataType;

/// Errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// No column with this name exists in the table.
    NoSuchColumn { table: String, column: String },
    /// No index with this name exists on the table.
    NoSuchIndex { table: String, index: String },
    /// An index with this name already exists on the table.
    IndexExists { table: String, index: String },
    /// Row arity does not match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value has the wrong type for its column.
    TypeMismatch {
        column: String,
        expected: DataType,
        got: DataType,
    },
    /// NULL stored into a NOT NULL column.
    NullViolation { column: String },
    /// Duplicate primary key.
    DuplicateKey { table: String, key: String },
    /// Duplicate value in a UNIQUE column.
    UniqueViolation { column: String, value: String },
    /// Primary key referenced for update/delete does not exist.
    NoSuchKey { table: String, key: String },
    /// A transaction operation was used outside a transaction.
    NoActiveTransaction,
    /// A transaction is already active.
    TransactionActive,
    /// Snapshot (de)serialization failure.
    Corrupt(String),
    /// Underlying I/O failure (message only; `std::io::Error` is not `Clone`).
    Io(String),
    /// Schema-level misuse, e.g. empty schema or bad primary-key position.
    InvalidSchema(String),
    /// A failpoint fired (only produced by tests with the `failpoints`
    /// feature; carries the site name).
    Injected(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StoreError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            StoreError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            StoreError::NoSuchIndex { table, index } => {
                write!(f, "no index `{index}` on table `{table}`")
            }
            StoreError::IndexExists { table, index } => {
                write!(f, "index `{index}` already exists on table `{table}`")
            }
            StoreError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            StoreError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "column `{column}` expects {expected:?} but value is {got:?}"
            ),
            StoreError::NullViolation { column } => {
                write!(f, "column `{column}` is NOT NULL but value is NULL")
            }
            StoreError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            StoreError::UniqueViolation { column, value } => {
                write!(f, "duplicate value {value} in UNIQUE column `{column}`")
            }
            StoreError::NoSuchKey { table, key } => {
                write!(f, "no row with primary key {key} in table `{table}`")
            }
            StoreError::NoActiveTransaction => write!(f, "no active transaction"),
            StoreError::TransactionActive => write!(f, "a transaction is already active"),
            StoreError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StoreError::Io(msg) => write!(f, "i/o error: {msg}"),
            StoreError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StoreError::Injected(site) => write!(f, "injected failure at failpoint `{site}`"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<StoreError> = vec![
            StoreError::TableExists("t".into()),
            StoreError::NoSuchTable("t".into()),
            StoreError::NoSuchColumn {
                table: "t".into(),
                column: "c".into(),
            },
            StoreError::NoSuchIndex {
                table: "t".into(),
                index: "i".into(),
            },
            StoreError::IndexExists {
                table: "t".into(),
                index: "i".into(),
            },
            StoreError::ArityMismatch {
                expected: 3,
                got: 2,
            },
            StoreError::TypeMismatch {
                column: "c".into(),
                expected: DataType::Int,
                got: DataType::Text,
            },
            StoreError::NullViolation { column: "c".into() },
            StoreError::DuplicateKey {
                table: "t".into(),
                key: "1".into(),
            },
            StoreError::UniqueViolation {
                column: "c".into(),
                value: "v".into(),
            },
            StoreError::NoSuchKey {
                table: "t".into(),
                key: "9".into(),
            },
            StoreError::NoActiveTransaction,
            StoreError::TransactionActive,
            StoreError::Corrupt("bad magic".into()),
            StoreError::Io("disk".into()),
            StoreError::InvalidSchema("empty".into()),
            StoreError::Injected("wal.append.before_sync".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
