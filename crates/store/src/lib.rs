//! # qatk-store — embedded relational storage for QATK
//!
//! The QATK analytics pipeline of the paper stores its raw report data, its
//! knowledge bases and its classification results in a relational database
//! and accesses kNN instances "on disk … with on-the-fly access" to keep
//! memory bounded (paper §2.2, §4.5.1). This crate is that substrate: a small
//! embedded relational engine with
//!
//! * typed schemas ([`schema::Schema`]) over dynamic [`value::Value`]s,
//! * slotted-heap tables with primary-key and UNIQUE enforcement
//!   ([`table::Table`]),
//! * hash and ordered secondary indexes ([`index::Index`]),
//! * a predicate/query layer with a tiny access-path planner
//!   ([`query::Query`]), grouped aggregation ([`agg::GroupBy`]) and hash
//!   joins ([`join::Join`]),
//! * undo-log transactions ([`crate::db::Database::transaction`]),
//! * checksummed binary snapshots ([`crate::db::Database::save`] /
//!   [`crate::db::Database::load`]) plus a write-ahead log for incremental
//!   durability between snapshots ([`wal`]),
//! * and a lock-guarded shared handle ([`db::SharedDatabase`]).
//!
//! ## Example
//!
//! ```
//! use qatk_store::prelude::*;
//!
//! let mut db = Database::new();
//! let schema = SchemaBuilder::new()
//!     .pk("id", DataType::Int)
//!     .col("part_id", DataType::Text)
//!     .col("report", DataType::Text)
//!     .build()
//!     .unwrap();
//! db.create_table("bundles", schema).unwrap();
//! db.insert("bundles", row![1i64, "P07", "radio turns on and off by itself"]).unwrap();
//!
//! let t = db.table("bundles").unwrap();
//! let q = Query::new().filter(Cond::eq(t, "part_id", "P07").unwrap());
//! assert_eq!(q.run(t).unwrap().len(), 1);
//! ```

pub mod agg;
pub mod codec;
pub mod csv;
pub mod db;
pub mod error;
pub mod failpoint;
pub mod index;
pub mod join;
pub mod metrics;
pub mod persist;
pub mod predicate;
pub mod query;
pub mod row;
pub mod schema;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::agg::{Aggregate, GroupBy, GroupRow};
    pub use crate::csv::{export_table, import_table, parse_csv};
    pub use crate::db::{Database, SharedDatabase};
    pub use crate::error::{Result as StoreResult, StoreError};
    pub use crate::index::IndexKind;
    pub use crate::join::{Join, JoinKind};
    pub use crate::persist::SnapshotMeta;
    pub use crate::predicate::Predicate;
    pub use crate::query::{AccessPath, Cond, Query, SortOrder};
    pub use crate::row;
    pub use crate::row::Row;
    pub use crate::schema::{ColumnDef, Schema, SchemaBuilder};
    pub use crate::table::Table;
    pub use crate::value::{DataType, Value};
    pub use crate::wal::{
        read_log, replay, LoggedDatabase, RecoveryReport, ReplCursor, SegmentRetention, SyncPolicy,
        WalRecord, WalWriter,
    };
}

pub use prelude::*;
