//! Snapshot persistence: serialize a whole [`Database`] to a single file and
//! load it back, with version and checksum verification.
//!
//! The paper's prototype keeps raw report data, knowledge bases and
//! classification results in a relational database; snapshots give our
//! embedded engine the equivalent durability for batch analytics workloads.
//!
//! Snapshots are written *atomically*: the bytes go to a `<name>.tmp`
//! sibling first, the temp file is fsynced, renamed over the target, and the
//! parent directory is fsynced so the rename itself is durable. A crash at
//! any point leaves either the old snapshot or the new one — never a torn
//! file. Each snapshot also embeds a [`SnapshotMeta`] watermark telling
//! recovery which WAL epoch to start replaying from (see `wal.rs`).

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::codec::{self, fnv1a, MAGIC, VERSION};
use crate::db::Database;
use crate::error::{Result, StoreError};
use crate::failpoint;

/// Recovery metadata embedded in every snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotMeta {
    /// First WAL epoch that must be replayed on top of this snapshot.
    /// Segments with a smaller epoch are already folded into the snapshot;
    /// replaying them again would double-apply their operations.
    pub wal_replay_from: u64,
}

impl SnapshotMeta {
    /// Read just the watermark header of a snapshot file, without loading
    /// (or checksumming) the table payload. The replication leader uses this
    /// to learn the on-disk watermark cheaply; full verification happens
    /// wherever the snapshot is actually loaded.
    pub fn peek(path: impl AsRef<Path>) -> Result<SnapshotMeta> {
        let mut header = [0u8; 20]; // magic(8) + version(4) + watermark(8)
        let mut f = File::open(path.as_ref())?;
        std::io::Read::read_exact(&mut f, &mut header)?;
        let mut buf = &header[..];
        if &buf[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        buf.advance(MAGIC.len());
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        Ok(SnapshotMeta {
            wal_replay_from: buf.get_u64_le(),
        })
    }
}

/// Durably replace the file at `path` with `bytes`: write a `.tmp` sibling,
/// fsync it, rename it over the target, fsync the parent directory.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write = || -> Result<()> {
        failpoint::check("persist.write_tmp")?;
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        failpoint::check("persist.sync_tmp")?;
        f.sync_all()?;
        drop(f);
        failpoint::check("persist.rename")?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;
        Ok(())
    };
    let result = write();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsync the directory containing `path` so a just-completed rename survives
/// a crash. Directory fds are a Unix concept; elsewhere this is a no-op.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

impl Database {
    /// Serialize the database into a byte buffer (with a default, zero
    /// [`SnapshotMeta`] watermark).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with(SnapshotMeta::default())
    }

    /// Serialize the database with an explicit recovery watermark.
    pub fn to_bytes_with(&self, meta: SnapshotMeta) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        out.put_u64_le(meta.wal_replay_from);
        let tables = self.tables_sorted();
        out.put_u32_le(tables.len() as u32);
        for table in tables {
            codec::put_table(&mut out, table);
        }
        let checksum = fnv1a(&out);
        out.put_u64_le(checksum);
        out
    }

    /// A physical-layout-independent encoding of the database: tables in
    /// name order (as always) and rows in primary-key order rather than
    /// heap-slot order. Two logically equal databases that took different
    /// insert/delete paths produce identical canonical bytes, which is what
    /// the crash-recovery harness compares.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        let tables = self.tables_sorted();
        out.put_u32_le(tables.len() as u32);
        for table in tables {
            codec::put_table_canonical(&mut out, table);
        }
        let checksum = fnv1a(&out);
        out.put_u64_le(checksum);
        out
    }

    /// Deserialize a database from bytes produced by [`Database::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        Self::from_bytes_with(data).map(|(db, _)| db)
    }

    /// Deserialize a database plus its recovery watermark.
    pub fn from_bytes_with(data: &[u8]) -> Result<(Self, SnapshotMeta)> {
        if data.len() < MAGIC.len() + 4 + 8 + 4 + 8 {
            return Err(StoreError::Corrupt("snapshot too small".into()));
        }
        let (payload, checksum_bytes) = data.split_at(data.len() - 8);
        let mut cbuf = checksum_bytes;
        let stored = cbuf.get_u64_le();
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }

        let mut buf = payload;
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        buf.advance(MAGIC.len());
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        let meta = SnapshotMeta {
            wal_replay_from: buf.get_u64_le(),
        };
        let n_tables = buf.get_u32_le() as usize;
        let mut db = Database::new();
        for _ in 0..n_tables {
            let table = codec::get_table(&mut buf)?;
            db.insert_table_raw(table);
        }
        if buf.has_remaining() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after last table",
                buf.remaining()
            )));
        }
        Ok((db, meta))
    }

    /// Write a snapshot to a file, atomically (temp file + fsync + rename +
    /// directory fsync). A crash mid-save never destroys the previous
    /// snapshot.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.save_with(path, SnapshotMeta::default())
    }

    /// Atomic save with an explicit recovery watermark.
    pub fn save_with(&self, path: impl AsRef<Path>, meta: SnapshotMeta) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes_with(meta))
    }

    /// Load a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::load_with(path).map(|(db, _)| db)
    }

    /// Load a snapshot plus its recovery watermark.
    pub fn load_with(path: impl AsRef<Path>) -> Result<(Self, SnapshotMeta)> {
        let mut r = BufReader::new(File::open(path)?);
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        Database::from_bytes_with(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::{DataType, Value};

    fn sample_db() -> Database {
        let mut db = Database::new();
        let bundles = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part_id", DataType::Text)
            .col_null("report", DataType::Text)
            .col("score", DataType::Float)
            .build()
            .unwrap();
        db.create_table("bundles", bundles).unwrap();
        for i in 0..100i64 {
            let report: Value = if i % 7 == 0 {
                Value::Null
            } else {
                Value::from(format!("Lüfter defekt, Fall {i}"))
            };
            db.insert(
                "bundles",
                row![i, format!("P{:02}", i % 10), report, (i as f64) * 0.01],
            )
            .unwrap();
        }
        db.table_mut("bundles")
            .unwrap()
            .create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();

        let codes = SchemaBuilder::new()
            .pk("code", DataType::Text)
            .col("count", DataType::Int)
            .build()
            .unwrap();
        db.create_table("codes", codes).unwrap();
        db.insert("codes", row!["E100", 40i64]).unwrap();
        db.insert("codes", row!["E200", 2i64]).unwrap();
        db
    }

    #[test]
    fn bytes_roundtrip() {
        let db = sample_db();
        let bytes = db.to_bytes();
        let got = Database::from_bytes(&bytes).unwrap();
        assert_eq!(got.table_names(), vec!["bundles", "codes"]);
        assert_eq!(got.table("bundles").unwrap().len(), 100);
        assert_eq!(got.table("codes").unwrap().len(), 2);
        // secondary index survives
        assert_eq!(
            got.table("bundles")
                .unwrap()
                .lookup("part_id", &Value::from("P03"))
                .unwrap()
                .len(),
            10
        );
        // NULLs survive
        let r = got.get("bundles", &Value::Int(0)).unwrap().unwrap();
        assert!(r.get(2).unwrap().is_null());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qatk_store_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.qdb");
        let db = sample_db();
        db.save(&path).unwrap();
        let got = Database::load(&path).unwrap();
        assert_eq!(got.total_rows(), db.total_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_watermark_roundtrips() {
        let db = sample_db();
        let meta = SnapshotMeta { wal_replay_from: 7 };
        let bytes = db.to_bytes_with(meta);
        let (got, got_meta) = Database::from_bytes_with(&bytes).unwrap();
        assert_eq!(got_meta, meta);
        assert_eq!(got.total_rows(), db.total_rows());
        // default watermark is zero
        let (_, m0) = Database::from_bytes_with(&db.to_bytes()).unwrap();
        assert_eq!(m0.wal_replay_from, 0);
    }

    #[test]
    fn atomic_save_leaves_no_tmp_and_replaces_in_one_step() {
        let dir = std::env::temp_dir().join("qatk_store_persist_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.qdb");
        let db = sample_db();
        db.save(&path).unwrap();
        // overwrite with a different database: old content fully replaced
        let mut small = Database::new();
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .build()
            .unwrap();
        small.create_table("only", schema).unwrap();
        small.save(&path).unwrap();
        let got = Database::load(&path).unwrap();
        assert_eq!(got.table_names(), vec!["only"]);
        assert!(!dir.join("snap.qdb.tmp").exists(), "tmp file left behind");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn canonical_bytes_ignore_heap_layout() {
        let schema = || {
            SchemaBuilder::new()
                .pk("id", DataType::Int)
                .col("v", DataType::Text)
                .build()
                .unwrap()
        };
        // db1: insert a,b,c, delete b, insert d → d reuses b's freed slot
        let mut db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        for (i, v) in [(1i64, "a"), (2, "b"), (3, "c")] {
            db1.insert("t", row![i, v.to_owned()]).unwrap();
        }
        db1.delete("t", &Value::Int(2)).unwrap();
        db1.insert("t", row![4i64, "d".to_owned()]).unwrap();
        // db2: same logical content inserted in pk order, no deletions
        let mut db2 = Database::new();
        db2.create_table("t", schema()).unwrap();
        for (i, v) in [(1i64, "a"), (3, "c"), (4, "d")] {
            db2.insert("t", row![i, v.to_owned()]).unwrap();
        }
        assert_ne!(
            db1.to_bytes(),
            db2.to_bytes(),
            "physical encodings should differ (slot reuse)"
        );
        assert_eq!(db1.canonical_bytes(), db2.canonical_bytes());
    }

    #[test]
    fn checksum_detects_bitflip() {
        let db = sample_db();
        let mut bytes = db.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            Database::from_bytes(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let db = sample_db();
        let mut bytes = db.to_bytes();
        bytes[0] = b'X';
        // fix checksum so the magic check itself is exercised
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = Database::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("magic")));

        let mut bytes = db.to_bytes();
        bytes[8] = 42; // version
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = Database::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("version")));
    }

    #[test]
    fn tiny_input_rejected() {
        assert!(Database::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = Database::load("/definitely/not/here.qdb");
        assert!(matches!(r, Err(StoreError::Io(_))));
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let got = Database::from_bytes(&db.to_bytes()).unwrap();
        assert!(got.table_names().is_empty());
    }
}
