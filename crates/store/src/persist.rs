//! Snapshot persistence: serialize a whole [`Database`] to a single file and
//! load it back, with version and checksum verification.
//!
//! The paper's prototype keeps raw report data, knowledge bases and
//! classification results in a relational database; snapshots give our
//! embedded engine the equivalent durability for batch analytics workloads.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::codec::{self, fnv1a, MAGIC, VERSION};
use crate::db::Database;
use crate::error::{Result, StoreError};

impl Database {
    /// Serialize the database into a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        let tables = self.tables_sorted();
        out.put_u32_le(tables.len() as u32);
        for table in tables {
            codec::put_table(&mut out, table);
        }
        let checksum = fnv1a(&out);
        out.put_u64_le(checksum);
        out
    }

    /// Deserialize a database from bytes produced by [`Database::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        if data.len() < MAGIC.len() + 4 + 4 + 8 {
            return Err(StoreError::Corrupt("snapshot too small".into()));
        }
        let (payload, checksum_bytes) = data.split_at(data.len() - 8);
        let mut cbuf = checksum_bytes;
        let stored = cbuf.get_u64_le();
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }

        let mut buf = payload;
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        buf.advance(MAGIC.len());
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        let n_tables = buf.get_u32_le() as usize;
        let mut db = Database::new();
        for _ in 0..n_tables {
            let table = codec::get_table(&mut buf)?;
            db.insert_table_raw(table);
        }
        if buf.has_remaining() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after last table",
                buf.remaining()
            )));
        }
        Ok(db)
    }

    /// Write a snapshot to a file (buffered, then flushed).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = self.to_bytes();
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&bytes)?;
        w.flush()?;
        Ok(())
    }

    /// Load a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        Database::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::{DataType, Value};

    fn sample_db() -> Database {
        let mut db = Database::new();
        let bundles = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part_id", DataType::Text)
            .col_null("report", DataType::Text)
            .col("score", DataType::Float)
            .build()
            .unwrap();
        db.create_table("bundles", bundles).unwrap();
        for i in 0..100i64 {
            let report: Value = if i % 7 == 0 {
                Value::Null
            } else {
                Value::from(format!("Lüfter defekt, Fall {i}"))
            };
            db.insert(
                "bundles",
                row![i, format!("P{:02}", i % 10), report, (i as f64) * 0.01],
            )
            .unwrap();
        }
        db.table_mut("bundles")
            .unwrap()
            .create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();

        let codes = SchemaBuilder::new()
            .pk("code", DataType::Text)
            .col("count", DataType::Int)
            .build()
            .unwrap();
        db.create_table("codes", codes).unwrap();
        db.insert("codes", row!["E100", 40i64]).unwrap();
        db.insert("codes", row!["E200", 2i64]).unwrap();
        db
    }

    #[test]
    fn bytes_roundtrip() {
        let db = sample_db();
        let bytes = db.to_bytes();
        let got = Database::from_bytes(&bytes).unwrap();
        assert_eq!(got.table_names(), vec!["bundles", "codes"]);
        assert_eq!(got.table("bundles").unwrap().len(), 100);
        assert_eq!(got.table("codes").unwrap().len(), 2);
        // secondary index survives
        assert_eq!(
            got.table("bundles")
                .unwrap()
                .lookup("part_id", &Value::from("P03"))
                .unwrap()
                .len(),
            10
        );
        // NULLs survive
        let r = got.get("bundles", &Value::Int(0)).unwrap().unwrap();
        assert!(r.get(2).unwrap().is_null());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qatk_store_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.qdb");
        let db = sample_db();
        db.save(&path).unwrap();
        let got = Database::load(&path).unwrap();
        assert_eq!(got.total_rows(), db.total_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_detects_bitflip() {
        let db = sample_db();
        let mut bytes = db.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            Database::from_bytes(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let db = sample_db();
        let mut bytes = db.to_bytes();
        bytes[0] = b'X';
        // fix checksum so the magic check itself is exercised
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = Database::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("magic")));

        let mut bytes = db.to_bytes();
        bytes[8] = 42; // version
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = Database::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(ref m) if m.contains("version")));
    }

    #[test]
    fn tiny_input_rejected() {
        assert!(Database::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = Database::load("/definitely/not/here.qdb");
        assert!(matches!(r, Err(StoreError::Io(_))));
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let got = Database::from_bytes(&db.to_bytes()).unwrap();
        assert!(got.table_names().is_empty());
    }
}
