//! Write-ahead logging: incremental durability between snapshots.
//!
//! Snapshots ([`crate::persist`]) capture a whole database; for QATK's
//! online phase — recommendations and assignments trickling in while the
//! quality workers use QUEST — rewriting the snapshot per write would be
//! wasteful. A [`WalWriter`] appends one record per DML operation;
//! [`replay`] applies a log on top of the snapshot it started from. Records
//! are length-prefixed and individually checksummed, so a torn tail (crash
//! mid-append) is detected and cleanly ignored.
//!
//! Format per record:
//!
//! ```text
//! record := len:u32 payload checksum:u64      (fnv1a over payload)
//! payload := op:u8 table_name row|pk          (1 insert, 2 update, 3 delete)
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::codec::{fnv1a, get_value, put_value};
use crate::db::Database;
use crate::error::{Result, StoreError};
use crate::row::Row;
use crate::value::Value;

const OP_INSERT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Insert { table: String, row: Row },
    Update { table: String, pk: Value, row: Row },
    Delete { table: String, pk: Value },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("wal: truncated string".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("wal: truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| StoreError::Corrupt("wal: invalid utf8".into()))?;
    buf.advance(len);
    Ok(s)
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    out.put_u16_le(row.arity() as u16);
    for v in row.values() {
        put_value(out, v);
    }
}

fn get_row(buf: &mut &[u8]) -> Result<Row> {
    if buf.remaining() < 2 {
        return Err(StoreError::Corrupt("wal: truncated row".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(buf)?);
    }
    Ok(Row::new(values))
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        match self {
            WalRecord::Insert { table, row } => {
                payload.put_u8(OP_INSERT);
                put_str(&mut payload, table);
                put_row(&mut payload, row);
            }
            WalRecord::Update { table, pk, row } => {
                payload.put_u8(OP_UPDATE);
                put_str(&mut payload, table);
                put_value(&mut payload, pk);
                put_row(&mut payload, row);
            }
            WalRecord::Delete { table, pk } => {
                payload.put_u8(OP_DELETE);
                put_str(&mut payload, table);
                put_value(&mut payload, pk);
            }
        }
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.put_u32_le(payload.len() as u32);
        out.put_slice(&payload);
        out.put_u64_le(fnv1a(&payload));
        out
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut buf = payload;
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("wal: empty payload".into()));
        }
        let op = buf.get_u8();
        let table = get_str(&mut buf)?;
        let record = match op {
            OP_INSERT => WalRecord::Insert {
                table,
                row: get_row(&mut buf)?,
            },
            OP_UPDATE => {
                let pk = get_value(&mut buf)?;
                let row = get_row(&mut buf)?;
                WalRecord::Update { table, pk, row }
            }
            OP_DELETE => WalRecord::Delete {
                table,
                pk: get_value(&mut buf)?,
            },
            other => return Err(StoreError::Corrupt(format!("wal: unknown op {other}"))),
        };
        if buf.has_remaining() {
            return Err(StoreError::Corrupt("wal: trailing payload bytes".into()));
        }
        Ok(record)
    }
}

/// Appends records to a log file, flushing each append.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<File>,
    records: usize,
}

impl WalWriter {
    /// Open (or create) a log for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            records: 0,
        })
    }

    /// Append one record and flush it.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.wal_flush_latency_ns);
        let encoded = record.encode();
        self.out.write_all(&encoded)?;
        self.out.flush()?;
        self.records += 1;
        m.wal_appends_total.inc();
        m.wal_bytes_total.add(encoded.len() as u64);
        Ok(())
    }

    /// Records appended through this writer.
    pub fn appended(&self) -> usize {
        self.records
    }
}

/// Read every intact record of a log. A torn or corrupt tail ends the read
/// (records before it are returned); corruption *before* the tail is an
/// error, because silently skipping mid-log damage would reorder history.
pub fn read_log(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut buf = data.as_slice();
    let mut out = Vec::new();
    while buf.has_remaining() {
        if buf.remaining() < 4 {
            break; // torn length prefix at the tail
        }
        let mut peek = buf;
        let len = peek.get_u32_le() as usize;
        if peek.remaining() < len + 8 {
            break; // torn record at the tail
        }
        let payload = &peek[..len];
        let mut check = &peek[len..len + 8];
        let stored = check.get_u64_le();
        if stored != fnv1a(payload) {
            // checksum mismatch: torn tail if this is the last record,
            // otherwise real corruption
            let consumed = 4 + len + 8;
            if buf.remaining() == consumed {
                break;
            }
            return Err(StoreError::Corrupt("wal: mid-log checksum mismatch".into()));
        }
        out.push(WalRecord::decode(payload)?);
        buf.advance(4 + len + 8);
    }
    Ok(out)
}

/// Apply a log to a database (typically the snapshot the log was started
/// against). Returns the number of applied records.
pub fn replay(db: &mut Database, records: &[WalRecord]) -> Result<usize> {
    for r in records {
        match r {
            WalRecord::Insert { table, row } => {
                db.insert(table, row.clone())?;
            }
            WalRecord::Update { table, pk, row } => {
                db.update(table, pk, row.clone())?;
            }
            WalRecord::Delete { table, pk } => {
                db.delete(table, pk)?;
            }
        }
    }
    Ok(records.len())
}

/// A database handle that mirrors every DML operation into a WAL.
#[derive(Debug)]
pub struct LoggedDatabase {
    db: Database,
    wal: WalWriter,
}

impl LoggedDatabase {
    /// Wrap a database (usually freshly loaded from a snapshot) with a log.
    pub fn new(db: Database, wal_path: impl AsRef<Path>) -> Result<Self> {
        Ok(LoggedDatabase {
            db,
            wal: WalWriter::open(wal_path)?,
        })
    }

    /// Recover: load the snapshot, then apply the log on top.
    pub fn recover(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
    ) -> Result<Database> {
        let mut db = Database::load(snapshot_path)?;
        let records = read_log(wal_path)?;
        replay(&mut db, &records)?;
        Ok(db)
    }

    /// Read access to the wrapped database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn insert(&mut self, table: &str, row: Row) -> Result<Value> {
        let pk = self.db.insert(table, row.clone())?;
        self.wal.append(&WalRecord::Insert {
            table: table.to_owned(),
            row,
        })?;
        Ok(pk)
    }

    pub fn update(&mut self, table: &str, pk: &Value, row: Row) -> Result<()> {
        self.db.update(table, pk, row.clone())?;
        self.wal.append(&WalRecord::Update {
            table: table.to_owned(),
            pk: pk.clone(),
            row,
        })?;
        Ok(())
    }

    pub fn delete(&mut self, table: &str, pk: &Value) -> Result<Row> {
        let row = self.db.delete(table, pk)?;
        self.wal.append(&WalRecord::Delete {
            table: table.to_owned(),
            pk: pk.clone(),
        })?;
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn schema_db() -> Database {
        let mut db = Database::new();
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap();
        db.create_table("t", schema).unwrap();
        db
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qatk_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}_{}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            WalRecord::Insert {
                table: "t".into(),
                row: row![1i64, "Lüfter"],
            },
            WalRecord::Update {
                table: "t".into(),
                pk: Value::Int(1),
                row: row![1i64, "fan"],
            },
            WalRecord::Delete {
                table: "t".into(),
                pk: Value::Int(1),
            },
        ];
        for r in &records {
            let bytes = r.encode();
            let mut buf = bytes.as_slice();
            let len = buf.get_u32_le() as usize;
            let decoded = WalRecord::decode(&buf[..len]).unwrap();
            assert_eq!(&decoded, r);
        }
    }

    #[test]
    fn append_read_replay() {
        let path = tmp("basic");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert {
            table: "t".into(),
            row: row![1i64, "one"],
        })
        .unwrap();
        w.append(&WalRecord::Insert {
            table: "t".into(),
            row: row![2i64, "two"],
        })
        .unwrap();
        w.append(&WalRecord::Update {
            table: "t".into(),
            pk: Value::Int(2),
            row: row![2i64, "TWO"],
        })
        .unwrap();
        w.append(&WalRecord::Delete {
            table: "t".into(),
            pk: Value::Int(1),
        })
        .unwrap();
        assert_eq!(w.appended(), 4);

        let records = read_log(&path).unwrap();
        assert_eq!(records.len(), 4);
        let mut db = schema_db();
        assert_eq!(replay(&mut db, &records).unwrap(), 4);
        assert_eq!(db.total_rows(), 1);
        assert_eq!(
            db.get("t", &Value::Int(2))
                .unwrap()
                .unwrap()
                .get(1)
                .and_then(Value::as_text),
            Some("TWO")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_mid_log_corruption_is_not() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path).unwrap();
        for i in 0..5i64 {
            w.append(&WalRecord::Insert {
                table: "t".into(),
                row: row![i, format!("r{i}")],
            })
            .unwrap();
        }
        drop(w);
        // torn tail: truncate the file mid-record
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let records = read_log(&path).unwrap();
        assert_eq!(records.len(), 4);

        // mid-log corruption: flip a byte inside the second record's payload
        let mut corrupted = bytes.clone();
        let rec_len = {
            let mut b = bytes.as_slice();
            b.get_u32_le() as usize + 12
        };
        corrupted[rec_len + 8] ^= 0xff;
        std::fs::write(&path, &corrupted).unwrap();
        assert!(matches!(read_log(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn logged_database_end_to_end_recovery() {
        let snap = tmp("snap");
        let wal = tmp("log");
        // snapshot with one row
        let mut base = schema_db();
        base.insert("t", row![1i64, "base"]).unwrap();
        base.save(&snap).unwrap();

        // log more operations on top
        let mut logged = LoggedDatabase::new(Database::load(&snap).unwrap(), &wal).unwrap();
        logged.insert("t", row![2i64, "two"]).unwrap();
        logged.insert("t", row![3i64, "three"]).unwrap();
        logged
            .update("t", &Value::Int(1), row![1i64, "BASE"])
            .unwrap();
        logged.delete("t", &Value::Int(3)).unwrap();
        assert_eq!(logged.db().total_rows(), 2);
        drop(logged);

        // crash-recover from snapshot + wal
        let recovered = LoggedDatabase::recover(&snap, &wal).unwrap();
        assert_eq!(recovered.total_rows(), 2);
        assert_eq!(
            recovered
                .get("t", &Value::Int(1))
                .unwrap()
                .unwrap()
                .get(1)
                .and_then(Value::as_text),
            Some("BASE")
        );
        assert!(recovered.get("t", &Value::Int(3)).unwrap().is_none());
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn replay_surfaces_conflicts() {
        let mut db = schema_db();
        db.insert("t", row![1i64, "exists"]).unwrap();
        let records = [WalRecord::Insert {
            table: "t".into(),
            row: row![1i64, "duplicate"],
        }];
        assert!(matches!(
            replay(&mut db, &records),
            Err(StoreError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn empty_log_reads_empty() {
        let path = tmp("empty");
        let _ = WalWriter::open(&path).unwrap();
        assert!(read_log(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
