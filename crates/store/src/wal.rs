//! Write-ahead logging: incremental durability between snapshots.
//!
//! Snapshots ([`crate::persist`]) capture a whole database; for QATK's
//! online phase — recommendations and assignments trickling in while the
//! quality workers use QUEST — rewriting the snapshot per write would be
//! wasteful. A [`WalWriter`] appends one record per DML operation;
//! [`replay`] applies a log on top of the snapshot it started from. Records
//! are length-prefixed and individually checksummed, so a torn tail (crash
//! mid-append) is detected and cleanly truncated, while corruption anywhere
//! before the tail is reported as an error.
//!
//! Format per record:
//!
//! ```text
//! record := len:u32 payload checksum:u64      (fnv1a over payload)
//! payload := op:u8 table_name row|pk          (1 insert, 2 update, 3 delete)
//! ```
//!
//! ## Durability contract (DESIGN.md §9)
//!
//! [`LoggedDatabase`] enforces *write-ahead ordering*: a mutation is staged
//! against the in-memory database (which validates constraints), the record
//! is appended to the log, and only then is the staging committed and the
//! operation acknowledged to the caller. If the append fails, the staging is
//! undone — the database never holds an acknowledged change that the log
//! does not. How durable an *appended* record is depends on the
//! [`SyncPolicy`]:
//!
//! * [`SyncPolicy::Always`] — `fdatasync` after every append (or batch);
//!   an acknowledged write survives power loss.
//! * [`SyncPolicy::EveryN`] — group commit: sync once per `n` appended
//!   records; at most `n - 1` acknowledged writes can be lost to power
//!   failure (none to a process crash).
//! * [`SyncPolicy::OsOnly`] — flush to the OS page cache only; survives a
//!   process crash but not power loss. This is the default and matches the
//!   engine's historical behaviour.
//!
//! [`LoggedDatabase::checkpoint`] bounds log growth: it seals the active log
//! into an epoch-suffixed segment (`wal.log` → `wal.log.000000`), saves an
//! atomic snapshot carrying a `wal_replay_from` watermark, and deletes the
//! segments the snapshot covers. [`LoggedDatabase::open`] recovers by
//! loading the snapshot, replaying every surviving segment at or past the
//! watermark in epoch order, truncating a torn tail off the active log, and
//! replaying the rest; it reports what happened in a [`RecoveryReport`].

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};

use crate::codec::{fnv1a, get_value, put_value};
use crate::db::Database;
use crate::error::{Result, StoreError};
use crate::failpoint;
use crate::persist::{self, SnapshotMeta};
use crate::row::Row;
use crate::value::Value;

const OP_INSERT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// Largest plausible record payload (16 MiB − 1). Length prefixes above
/// this are treated as corruption, not as a torn tail: an append-only log
/// can tear a record short, but it cannot legitimately claim more bytes
/// than any writer would ever frame.
pub const MAX_WAL_PAYLOAD: usize = (1 << 24) - 1;

/// When the WAL issues `fdatasync` on its file. See the module docs for the
/// durability each policy buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Sync after every append (or batch): acknowledged writes survive
    /// power loss.
    Always,
    /// Group commit: sync once every `n` appended records.
    EveryN(usize),
    /// Flush to the OS page cache only (survives process crash, not power
    /// loss). The default.
    #[default]
    OsOnly,
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Insert { table: String, row: Row },
    Update { table: String, pk: Value, row: Row },
    Delete { table: String, pk: Value },
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    if s.len() > MAX_WAL_PAYLOAD {
        return Err(StoreError::Corrupt(format!(
            "wal: string of {} bytes exceeds the {MAX_WAL_PAYLOAD}-byte record limit",
            s.len()
        )));
    }
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
    Ok(())
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("wal: truncated string".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("wal: truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| StoreError::Corrupt("wal: invalid utf8".into()))?;
    buf.advance(len);
    Ok(s)
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    out.put_u16_le(row.arity() as u16);
    for v in row.values() {
        put_value(out, v);
    }
}

fn get_row(buf: &mut &[u8]) -> Result<Row> {
    if buf.remaining() < 2 {
        return Err(StoreError::Corrupt("wal: truncated row".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(buf)?);
    }
    Ok(Row::new(values))
}

impl WalRecord {
    fn encode(&self) -> Result<Vec<u8>> {
        let mut payload = Vec::with_capacity(64);
        match self {
            WalRecord::Insert { table, row } => {
                payload.put_u8(OP_INSERT);
                put_str(&mut payload, table)?;
                put_row(&mut payload, row);
            }
            WalRecord::Update { table, pk, row } => {
                payload.put_u8(OP_UPDATE);
                put_str(&mut payload, table)?;
                put_value(&mut payload, pk);
                put_row(&mut payload, row);
            }
            WalRecord::Delete { table, pk } => {
                payload.put_u8(OP_DELETE);
                put_str(&mut payload, table)?;
                put_value(&mut payload, pk);
            }
        }
        if payload.len() > MAX_WAL_PAYLOAD {
            return Err(StoreError::Corrupt(format!(
                "wal: record payload of {} bytes exceeds the {MAX_WAL_PAYLOAD}-byte limit",
                payload.len()
            )));
        }
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.put_u32_le(payload.len() as u32);
        out.put_slice(&payload);
        out.put_u64_le(fnv1a(&payload));
        Ok(out)
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut buf = payload;
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("wal: empty payload".into()));
        }
        let op = buf.get_u8();
        let table = get_str(&mut buf)?;
        let record = match op {
            OP_INSERT => WalRecord::Insert {
                table,
                row: get_row(&mut buf)?,
            },
            OP_UPDATE => {
                let pk = get_value(&mut buf)?;
                let row = get_row(&mut buf)?;
                WalRecord::Update { table, pk, row }
            }
            OP_DELETE => WalRecord::Delete {
                table,
                pk: get_value(&mut buf)?,
            },
            other => return Err(StoreError::Corrupt(format!("wal: unknown op {other}"))),
        };
        if buf.has_remaining() {
            return Err(StoreError::Corrupt("wal: trailing payload bytes".into()));
        }
        Ok(record)
    }
}

/// Appends records to a log file under a [`SyncPolicy`].
///
/// A writer that hits an I/O error (or an armed failpoint) becomes
/// *poisoned*: further appends fail fast and the final-flush-on-drop is
/// skipped, so a simulated crash does not quietly push half-written state
/// to the OS on the way out.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<File>,
    records: usize,
    policy: SyncPolicy,
    /// Appends since the last sync (drives [`SyncPolicy::EveryN`]).
    unsynced: usize,
    poisoned: bool,
}

impl WalWriter {
    /// Open (or create) a log for appending with the default
    /// [`SyncPolicy::OsOnly`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, SyncPolicy::default())
    }

    /// Open (or create) a log for appending under an explicit policy.
    pub fn open_with(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            records: 0,
            policy,
            unsynced: 0,
            poisoned: false,
        })
    }

    /// The policy this writer syncs under.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Append one record; flushed (and synced, per policy) before returning.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Group commit: append a batch of records with a single flush and (per
    /// policy) a single sync for the whole batch.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> Result<()> {
        self.ensure_usable()?;
        if records.is_empty() {
            return Ok(());
        }
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.wal_flush_latency_ns);
        let _trace = qatk_trace::child_span("store.wal_append");
        qatk_trace::annotate("records", records.len() as u64);
        let result = self.write_batch(records);
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn write_batch(&mut self, records: &[WalRecord]) -> Result<()> {
        let m = crate::metrics::metrics();
        failpoint::check("wal.append.before_write")?;
        let mut bytes = 0u64;
        for record in records {
            let encoded = record.encode()?;
            self.out.write_all(&encoded)?;
            bytes += encoded.len() as u64;
        }
        self.out.flush()?;
        match self.policy {
            SyncPolicy::OsOnly => {}
            SyncPolicy::Always => self.sync_file()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += records.len();
                if self.unsynced >= n.max(1) {
                    self.sync_file()?;
                }
            }
        }
        self.records += records.len();
        m.wal_appends_total.add(records.len() as u64);
        m.wal_bytes_total.add(bytes);
        Ok(())
    }

    /// Force everything appended so far onto stable storage, regardless of
    /// policy.
    pub fn sync(&mut self) -> Result<()> {
        self.ensure_usable()?;
        let result = self
            .out
            .flush()
            .map_err(Into::into)
            .and_then(|()| self.sync_file());
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn sync_file(&mut self) -> Result<()> {
        failpoint::check("wal.append.before_sync")?;
        self.out.get_ref().sync_data()?;
        self.unsynced = 0;
        crate::metrics::metrics().wal_syncs_total.inc();
        failpoint::check("wal.append.after_sync")?;
        Ok(())
    }

    fn ensure_usable(&self) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::Io(
                "wal writer is poisoned after a failed append".into(),
            ));
        }
        Ok(())
    }

    /// Records appended through this writer.
    pub fn appended(&self) -> usize {
        self.records
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Final-flush guarantee for buffered bytes — unless the writer is
        // poisoned, in which case dropping is the simulated kill and must
        // not push more state to the OS.
        if !self.poisoned {
            let _ = self.out.flush();
        }
    }
}

/// What a raw scan of one log file found.
pub struct LogScan {
    pub records: Vec<WalRecord>,
    /// Byte length of the intact prefix (what recovery truncates to).
    pub valid_len: u64,
    /// True if the file ended in a torn (incomplete) record.
    pub torn: bool,
}

/// Scan a log file: every intact record, the byte length of the intact
/// prefix, and whether the file ends in a torn record. Mid-log corruption is
/// an error, as in [`read_log`].
pub fn scan_log(path: &Path) -> Result<LogScan> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    scan_bytes(&data)
}

/// Scan an in-memory byte run with the same rules as [`scan_log`]. The
/// replication follower uses this to verify a received chunk parses as whole,
/// checksummed records before appending it to its local segment copy.
pub fn scan_bytes(data: &[u8]) -> Result<LogScan> {
    let mut buf = data;
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut torn = false;
    while buf.has_remaining() {
        if buf.remaining() < 4 {
            torn = true; // torn length prefix at the tail
            break;
        }
        let mut peek = buf;
        let len = peek.get_u32_le() as usize;
        if len > MAX_WAL_PAYLOAD {
            // No writer ever frames a record this large, so this length
            // prefix is damaged — treating it as a torn tail would silently
            // drop every record after it.
            return Err(StoreError::Corrupt(format!(
                "wal: implausible record length {len} at byte {valid_len}"
            )));
        }
        if peek.remaining() < len + 8 {
            torn = true; // plausible record, file ends early: torn tail
            break;
        }
        let payload = &peek[..len];
        let mut check = &peek[len..len + 8];
        let stored = check.get_u64_le();
        if stored != fnv1a(payload) {
            // checksum mismatch: torn tail if this is the last record,
            // otherwise real corruption
            let consumed = 4 + len + 8;
            if buf.remaining() == consumed {
                torn = true;
                break;
            }
            return Err(StoreError::Corrupt("wal: mid-log checksum mismatch".into()));
        }
        records.push(WalRecord::decode(payload)?);
        buf.advance(4 + len + 8);
        valid_len += (4 + len + 8) as u64;
    }
    Ok(LogScan {
        records,
        valid_len,
        torn,
    })
}

/// Read every intact record of a log. A torn tail ends the read (records
/// before it are returned); corruption *before* the tail — a mid-log
/// checksum mismatch or an implausible length prefix — is an error, because
/// silently skipping mid-log damage would reorder history.
pub fn read_log(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
    scan_log(path.as_ref()).map(|scan| scan.records)
}

/// Apply a log to a database (typically the snapshot the log was started
/// against). Returns the number of applied records.
pub fn replay(db: &mut Database, records: &[WalRecord]) -> Result<usize> {
    for r in records {
        match r {
            WalRecord::Insert { table, row } => {
                db.insert(table, row.clone())?;
            }
            WalRecord::Update { table, pk, row } => {
                db.update(table, pk, row.clone())?;
            }
            WalRecord::Delete { table, pk } => {
                db.delete(table, pk)?;
            }
        }
    }
    Ok(records.len())
}

/// What [`LoggedDatabase::open`] did to reconstruct the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// A snapshot file existed and was loaded (false: started empty).
    pub snapshot_loaded: bool,
    /// The snapshot's watermark: first WAL epoch replayed on top of it.
    pub replay_from: u64,
    /// Sealed segments replayed (the active log is not counted).
    pub segments_replayed: usize,
    /// Total WAL records replayed, active log included.
    pub records_replayed: usize,
    /// The active log ended in a torn record, which was truncated away.
    pub torn_tail: bool,
}

/// Sealed-segment path: the active log's path with `.<epoch:06>` appended.
pub fn segment_path(wal_path: &Path, epoch: u64) -> PathBuf {
    let mut os = wal_path.as_os_str().to_owned();
    os.push(format!(".{epoch:06}"));
    PathBuf::from(os)
}

/// Sealed segments next to `wal_path`, sorted by epoch.
pub fn list_segments(wal_path: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let parent = match wal_path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Some(base) = wal_path.file_name() else {
        return Err(StoreError::Io(format!(
            "wal path {} has no file name",
            wal_path.display()
        )));
    };
    let prefix = format!("{}.", base.to_string_lossy());
    let mut out = Vec::new();
    if !parent.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(&parent)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(suffix) = name.strip_prefix(&prefix) {
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(epoch) = suffix.parse::<u64>() {
                    out.push((epoch, entry.path()));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Position in a replicated WAL stream, as reported by a follower and
/// resumed by a leader.
///
/// The three fields mirror the on-disk layout: `watermark` is the snapshot
/// watermark the follower's database is based on (the first WAL epoch *not*
/// folded into its snapshot), `segment` is the epoch-numbered segment the
/// follower reads next, and `offset` is the byte offset of the next record
/// within that segment. Offsets always sit on record boundaries: followers
/// only ever append whole, checksum-verified records.
///
/// Cursors order by `(segment, offset)`; the watermark is bookkeeping for
/// snapshot installs, not part of the stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplCursor {
    /// First WAL epoch that is *not* folded into the reader's snapshot.
    pub watermark: u64,
    /// Epoch of the segment the reader consumes next.
    pub segment: u64,
    /// Byte offset of the next record within that segment.
    pub offset: u64,
}

impl ReplCursor {
    /// Stream position (ignores the watermark): has this cursor consumed at
    /// least as much of the log as `other`?
    pub fn at_or_past(&self, other: &ReplCursor) -> bool {
        (self.segment, self.offset) >= (other.segment, other.offset)
    }
}

impl std::fmt::Display for ReplCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "w{}/s{:06}+{}",
            self.watermark, self.segment, self.offset
        )
    }
}

/// A run of whole records read from one log file, as shipped to a follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentChunk {
    /// Raw record bytes (length prefixes and checksums included), starting
    /// at the requested offset.
    pub bytes: Vec<u8>,
    /// Offset just past the last whole record returned — the next read (and
    /// the follower's acknowledgement) resumes here.
    pub end_offset: u64,
}

/// Read up to `max_len` bytes of *whole* records from a log file, starting
/// at byte `offset` (which must sit on a record boundary). A torn record at
/// the end of the readable window is simply not returned — the next call
/// picks it up once the writer completes it. Mid-log corruption is an error
/// unless it is the final record in the window (indistinguishable, at this
/// layer, from a record still being written).
pub fn read_segment_chunk(path: &Path, offset: u64, max_len: usize) -> Result<SegmentChunk> {
    use std::io::{Seek, SeekFrom};
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut data = Vec::with_capacity(max_len.min(1 << 20));
    f.take(max_len as u64).read_to_end(&mut data)?;
    let scan = scan_bytes(&data)?;
    data.truncate(scan.valid_len as usize);
    Ok(SegmentChunk {
        end_offset: offset + scan.valid_len,
        bytes: data,
    })
}

/// What [`LoggedDatabase::checkpoint`] does with sealed segments the
/// snapshot already covers.
///
/// Recovery never replays covered segments either way (the snapshot's
/// watermark excludes them); retention only decides whether the files stay
/// on disk for a replication leader to stream to followers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentRetention {
    /// Delete every covered segment immediately (the historical behaviour;
    /// minimal disk footprint, but a follower can only bootstrap from a
    /// full snapshot).
    #[default]
    DeleteCovered,
    /// Keep the newest `n` sealed segments even though the snapshot covers
    /// them, so a follower that is at most `n` checkpoints behind can
    /// resume from the log instead of re-shipping the whole snapshot.
    /// Older segments are still deleted.
    Keep(u64),
}

impl SegmentRetention {
    /// True if a segment sealed under `epoch` may be deleted once the
    /// snapshot watermark has advanced to `watermark` (first epoch NOT
    /// covered).
    fn expendable(&self, epoch: u64, watermark: u64) -> bool {
        match *self {
            SegmentRetention::DeleteCovered => epoch < watermark,
            SegmentRetention::Keep(n) => epoch < watermark.saturating_sub(n),
        }
    }
}

/// A database handle that mirrors every DML operation into a WAL, with
/// write-ahead ordering: *nothing is acknowledged before it is logged*.
#[derive(Debug)]
pub struct LoggedDatabase {
    db: Database,
    wal: WalWriter,
    wal_path: PathBuf,
    /// Where [`Self::checkpoint`] saves snapshots (set by [`Self::open`]).
    snapshot_path: Option<PathBuf>,
    /// Epoch the active log will be sealed under at the next checkpoint.
    epoch: u64,
    policy: SyncPolicy,
    retention: SegmentRetention,
}

impl LoggedDatabase {
    /// Wrap a database (usually freshly loaded from a snapshot) with a log,
    /// under the default [`SyncPolicy::OsOnly`]. The handle cannot
    /// checkpoint — use [`Self::open`] for the full lifecycle.
    pub fn new(db: Database, wal_path: impl AsRef<Path>) -> Result<Self> {
        let wal_path = wal_path.as_ref().to_path_buf();
        let policy = SyncPolicy::default();
        Ok(LoggedDatabase {
            db,
            wal: WalWriter::open_with(&wal_path, policy)?,
            wal_path,
            snapshot_path: None,
            epoch: 0,
            policy,
            retention: SegmentRetention::default(),
        })
    }

    /// Open (or create) a crash-safe database: load the snapshot at
    /// `snapshot_path` if it exists, replay every surviving WAL segment at
    /// or past its watermark plus the active log (truncating a torn tail),
    /// and return the handle together with a [`RecoveryReport`].
    pub fn open(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
        policy: SyncPolicy,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_with_retention(snapshot_path, wal_path, policy, SegmentRetention::default())
    }

    /// [`Self::open`] with an explicit [`SegmentRetention`] policy. A
    /// replication leader opens with [`SegmentRetention::Keep`] so followers
    /// can resume from recent sealed segments.
    pub fn open_with_retention(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
        policy: SyncPolicy,
        retention: SegmentRetention,
    ) -> Result<(Self, RecoveryReport)> {
        let snapshot_path = snapshot_path.as_ref().to_path_buf();
        let wal_path = wal_path.as_ref().to_path_buf();
        let mut report = RecoveryReport::default();

        let (mut db, meta) = if snapshot_path.exists() {
            let loaded = Database::load_with(&snapshot_path)?;
            report.snapshot_loaded = true;
            loaded
        } else {
            (Database::new(), SnapshotMeta::default())
        };
        report.replay_from = meta.wal_replay_from;

        let mut max_epoch = None;
        for (epoch, path) in list_segments(&wal_path)? {
            if epoch < meta.wal_replay_from {
                // Covered by the snapshot: never replayed. Whether the file
                // itself survives is the retention policy's call — a crash
                // may have interrupted the previous checkpoint's truncation
                // step, which is finished here.
                if retention.expendable(epoch, meta.wal_replay_from) {
                    std::fs::remove_file(&path)?;
                }
                continue;
            }
            let scan = scan_log(&path)?;
            if scan.torn {
                // Sealed segments were fully synced before rotation; a torn
                // tail here is damage, not an interrupted append.
                return Err(StoreError::Corrupt(format!(
                    "wal: sealed segment {} has a torn tail",
                    path.display()
                )));
            }
            replay(&mut db, &scan.records)?;
            report.segments_replayed += 1;
            report.records_replayed += scan.records.len();
            max_epoch = Some(max_epoch.unwrap_or(0).max(epoch));
        }

        if wal_path.exists() {
            let scan = scan_log(&wal_path)?;
            if scan.torn {
                OpenOptions::new()
                    .write(true)
                    .open(&wal_path)?
                    .set_len(scan.valid_len)?;
                crate::metrics::metrics().recovery_torn_tail_total.inc();
                report.torn_tail = true;
            }
            replay(&mut db, &scan.records)?;
            report.records_replayed += scan.records.len();
        }
        crate::metrics::metrics()
            .recovery_replayed_total
            .add(report.records_replayed as u64);

        let epoch = match max_epoch {
            Some(m) => (m + 1).max(meta.wal_replay_from),
            None => meta.wal_replay_from,
        };
        let wal = WalWriter::open_with(&wal_path, policy)?;
        Ok((
            LoggedDatabase {
                db,
                wal,
                wal_path,
                snapshot_path: Some(snapshot_path),
                epoch,
                policy,
                retention,
            },
            report,
        ))
    }

    /// Recover a database from a snapshot plus a single log, without
    /// constructing a handle (the snapshot must exist).
    pub fn recover(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
    ) -> Result<Database> {
        let mut db = Database::load(snapshot_path)?;
        let records = read_log(wal_path)?;
        let n = replay(&mut db, &records)?;
        crate::metrics::metrics()
            .recovery_replayed_total
            .add(n as u64);
        Ok(db)
    }

    /// Read access to the wrapped database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Epoch the active log will be sealed under at the next checkpoint.
    /// Sealed segments on disk always carry strictly smaller epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Path of the active log (sealed segments sit next to it, suffixed
    /// `.<epoch:06>`).
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Where checkpoints save snapshots (`None` for handles made with
    /// [`Self::new`], which cannot checkpoint).
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// The sync policy the log is running under.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Create a table. DDL is *not* WAL-logged: recovery replays DML
    /// against the tables the snapshot holds, so create tables before
    /// writing and [`Self::checkpoint`] to make them durable.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: crate::schema::Schema,
    ) -> Result<()> {
        self.db.create_table(name, schema)
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.db.has_table(name)
    }

    /// Stage `apply` against the database, make `record` durable, then
    /// commit the staging. On any failure the staging is undone: the
    /// in-memory state never gets ahead of the log.
    fn staged<R>(
        &mut self,
        record: WalRecord,
        apply: impl FnOnce(&mut Database) -> Result<R>,
    ) -> Result<R> {
        if self.db.in_transaction() {
            return Err(StoreError::TransactionActive);
        }
        self.db.txn = Some(Vec::new());
        match apply(&mut self.db) {
            Ok(value) => match self.wal.append(&record) {
                Ok(()) => {
                    self.db.txn = None;
                    Ok(value)
                }
                Err(e) => {
                    self.unstage()?;
                    Err(e)
                }
            },
            Err(e) => {
                self.unstage()?;
                Err(e)
            }
        }
    }

    fn unstage(&mut self) -> Result<()> {
        if let Some(log) = self.db.txn.take() {
            self.db.undo_all(log)?;
        }
        Ok(())
    }

    pub fn insert(&mut self, table: &str, row: Row) -> Result<Value> {
        let record = WalRecord::Insert {
            table: table.to_owned(),
            row: row.clone(),
        };
        self.staged(record, |db| db.insert(table, row))
    }

    /// Insert a batch of rows with one group-committed WAL append. All rows
    /// are staged and logged together: either every row is acknowledged or
    /// none is applied.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<Value>> {
        if self.db.in_transaction() {
            return Err(StoreError::TransactionActive);
        }
        self.db.txn = Some(Vec::new());
        let mut pks = Vec::with_capacity(rows.len());
        let mut records = Vec::with_capacity(rows.len());
        for row in rows {
            let record = WalRecord::Insert {
                table: table.to_owned(),
                row: row.clone(),
            };
            match self.db.insert(table, row) {
                Ok(pk) => {
                    pks.push(pk);
                    records.push(record);
                }
                Err(e) => {
                    self.unstage()?;
                    return Err(e);
                }
            }
        }
        if let Err(e) = self.wal.append_batch(&records) {
            self.unstage()?;
            return Err(e);
        }
        self.db.txn = None;
        Ok(pks)
    }

    pub fn update(&mut self, table: &str, pk: &Value, row: Row) -> Result<()> {
        let record = WalRecord::Update {
            table: table.to_owned(),
            pk: pk.clone(),
            row: row.clone(),
        };
        self.staged(record, |db| db.update(table, pk, row))
    }

    pub fn delete(&mut self, table: &str, pk: &Value) -> Result<Row> {
        let record = WalRecord::Delete {
            table: table.to_owned(),
            pk: pk.clone(),
        };
        self.staged(record, |db| db.delete(table, pk))
    }

    /// Force every logged record onto stable storage, regardless of policy.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Checkpoint: seal the active log into an epoch-suffixed segment, save
    /// an atomic snapshot covering everything up to the seal, and delete the
    /// segments the snapshot covers. Requires a snapshot path, i.e. a handle
    /// from [`Self::open`].
    ///
    /// Crash-safe at every step: recovery from any intermediate state
    /// reproduces the same database (the snapshot's watermark tells
    /// [`Self::open`] which segments are already folded in). If this returns
    /// an error, the handle should be dropped and re-opened.
    pub fn checkpoint(&mut self) -> Result<()> {
        let snapshot_path = self.snapshot_path.clone().ok_or_else(|| {
            StoreError::Io(
                "checkpoint requires a snapshot path; open the database with LoggedDatabase::open"
                    .into(),
            )
        })?;
        let _trace = qatk_trace::child_span("store.checkpoint");
        failpoint::check("checkpoint.begin")?;
        // Everything in the active log must be durable before it is sealed:
        // recovery treats a torn tail in a sealed segment as corruption.
        self.wal.sync()?;
        let seal = self.epoch;
        let segment = segment_path(&self.wal_path, seal);
        std::fs::rename(&self.wal_path, &segment)?;
        persist::sync_parent_dir(&self.wal_path)?;
        // Bump the epoch before anything can fail below, so a retried
        // checkpoint never seals a second log under the same epoch.
        self.epoch = seal + 1;
        self.wal = WalWriter::open_with(&self.wal_path, self.policy)?;
        failpoint::check("checkpoint.mid_rotate")?;
        self.db.save_with(
            &snapshot_path,
            SnapshotMeta {
                wal_replay_from: seal + 1,
            },
        )?;
        failpoint::check("checkpoint.before_truncate")?;
        for (epoch, path) in list_segments(&self.wal_path)? {
            if self.retention.expendable(epoch, seal + 1) {
                std::fs::remove_file(&path)?;
            }
        }
        crate::metrics::metrics().checkpoints_total.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn schema_db() -> Database {
        let mut db = Database::new();
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap();
        db.create_table("t", schema).unwrap();
        db
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qatk_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}_{}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    /// Remove a test's active log plus any sealed segments.
    fn cleanup(wal_path: &Path) {
        std::fs::remove_file(wal_path).ok();
        for (_, seg) in list_segments(wal_path).unwrap_or_default() {
            std::fs::remove_file(seg).ok();
        }
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            WalRecord::Insert {
                table: "t".into(),
                row: row![1i64, "Lüfter"],
            },
            WalRecord::Update {
                table: "t".into(),
                pk: Value::Int(1),
                row: row![1i64, "fan"],
            },
            WalRecord::Delete {
                table: "t".into(),
                pk: Value::Int(1),
            },
        ];
        for r in &records {
            let bytes = r.encode().unwrap();
            let mut buf = bytes.as_slice();
            let len = buf.get_u32_le() as usize;
            let decoded = WalRecord::decode(&buf[..len]).unwrap();
            assert_eq!(&decoded, r);
        }
    }

    #[test]
    fn oversized_record_rejected_at_encode() {
        let record = WalRecord::Delete {
            table: "x".repeat(MAX_WAL_PAYLOAD + 1),
            pk: Value::Int(1),
        };
        assert!(matches!(record.encode(), Err(StoreError::Corrupt(_))));
        let path = tmp("oversized");
        let mut w = WalWriter::open(&path).unwrap();
        assert!(w.append(&record).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_read_replay() {
        let path = tmp("basic");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert {
            table: "t".into(),
            row: row![1i64, "one"],
        })
        .unwrap();
        w.append(&WalRecord::Insert {
            table: "t".into(),
            row: row![2i64, "two"],
        })
        .unwrap();
        w.append(&WalRecord::Update {
            table: "t".into(),
            pk: Value::Int(2),
            row: row![2i64, "TWO"],
        })
        .unwrap();
        w.append(&WalRecord::Delete {
            table: "t".into(),
            pk: Value::Int(1),
        })
        .unwrap();
        assert_eq!(w.appended(), 4);

        let records = read_log(&path).unwrap();
        assert_eq!(records.len(), 4);
        let mut db = schema_db();
        assert_eq!(replay(&mut db, &records).unwrap(), 4);
        assert_eq!(db.total_rows(), 1);
        assert_eq!(
            db.get("t", &Value::Int(2))
                .unwrap()
                .unwrap()
                .get(1)
                .and_then(Value::as_text),
            Some("TWO")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_batch_group_commits() {
        let path = tmp("batch");
        let mut w = WalWriter::open_with(&path, SyncPolicy::Always).unwrap();
        let records: Vec<WalRecord> = (0..10i64)
            .map(|i| WalRecord::Insert {
                table: "t".into(),
                row: row![i, format!("r{i}")],
            })
            .collect();
        w.append_batch(&records).unwrap();
        assert_eq!(w.appended(), 10);
        drop(w);
        assert_eq!(read_log(&path).unwrap().len(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_n_policy_syncs_in_groups() {
        let path = tmp("every_n");
        let before = crate::metrics::metrics().wal_syncs_total.get();
        let mut w = WalWriter::open_with(&path, SyncPolicy::EveryN(3)).unwrap();
        for i in 0..7i64 {
            w.append(&WalRecord::Insert {
                table: "t".into(),
                row: row![i, "x"],
            })
            .unwrap();
        }
        // 7 appends at n=3 → syncs after the 3rd and 6th
        assert_eq!(crate::metrics::metrics().wal_syncs_total.get() - before, 2);
        w.sync().unwrap();
        assert_eq!(crate::metrics::metrics().wal_syncs_total.get() - before, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_mid_log_corruption_is_not() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path).unwrap();
        for i in 0..5i64 {
            w.append(&WalRecord::Insert {
                table: "t".into(),
                row: row![i, format!("r{i}")],
            })
            .unwrap();
        }
        drop(w);
        // torn tail: truncate the file mid-record
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let records = read_log(&path).unwrap();
        assert_eq!(records.len(), 4);

        // mid-log corruption: flip a byte inside the second record's payload
        let mut corrupted = bytes.clone();
        let rec_len = {
            let mut b = bytes.as_slice();
            b.get_u32_le() as usize + 12
        };
        corrupted[rec_len + 8] ^= 0xff;
        std::fs::write(&path, &corrupted).unwrap();
        assert!(matches!(read_log(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    /// Regression for the masked-corruption bug: a bit-flipped length prefix
    /// claiming more bytes than remain used to silently end the read,
    /// dropping every record after it. It must be an error — in the first,
    /// a middle, and the last position.
    #[test]
    fn bit_flipped_length_prefix_is_corruption_not_torn_tail() {
        let path = tmp("flipped_len");
        let mut w = WalWriter::open(&path).unwrap();
        let mut offsets = Vec::new();
        let mut offset = 0usize;
        for i in 0..5i64 {
            let record = WalRecord::Insert {
                table: "t".into(),
                row: row![i, format!("r{i}")],
            };
            offsets.push(offset);
            offset += record.encode().unwrap().len();
            w.append(&record).unwrap();
        }
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        for (pos, &rec_start) in [0usize, 2, 4].iter().map(|&i| (i, &offsets[i])) {
            let mut corrupted = bytes.clone();
            // flip the length prefix's high byte: +16 MiB, over the limit
            corrupted[rec_start + 3] ^= 0x01;
            std::fs::write(&path, &corrupted).unwrap();
            let err = read_log(&path).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt(ref m) if m.contains("implausible")),
                "record {pos}: expected implausible-length corruption, got {err:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn logged_database_end_to_end_recovery() {
        let snap = tmp("snap");
        let wal = tmp("log");
        // snapshot with one row
        let mut base = schema_db();
        base.insert("t", row![1i64, "base"]).unwrap();
        base.save(&snap).unwrap();

        // log more operations on top
        let mut logged = LoggedDatabase::new(Database::load(&snap).unwrap(), &wal).unwrap();
        logged.insert("t", row![2i64, "two"]).unwrap();
        logged.insert("t", row![3i64, "three"]).unwrap();
        logged
            .update("t", &Value::Int(1), row![1i64, "BASE"])
            .unwrap();
        logged.delete("t", &Value::Int(3)).unwrap();
        assert_eq!(logged.db().total_rows(), 2);
        drop(logged);

        // crash-recover from snapshot + wal
        let recovered = LoggedDatabase::recover(&snap, &wal).unwrap();
        assert_eq!(recovered.total_rows(), 2);
        assert_eq!(
            recovered
                .get("t", &Value::Int(1))
                .unwrap()
                .unwrap()
                .get(1)
                .and_then(Value::as_text),
            Some("BASE")
        );
        assert!(recovered.get("t", &Value::Int(3)).unwrap().is_none());
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn rejected_mutation_leaves_no_trace_in_db_or_log() {
        let wal = tmp("rejected");
        let mut logged = LoggedDatabase::new(schema_db(), &wal).unwrap();
        logged.insert("t", row![1i64, "one"]).unwrap();
        // duplicate key: staged apply fails → nothing logged, nothing kept
        assert!(matches!(
            logged.insert("t", row![1i64, "dup"]),
            Err(StoreError::DuplicateKey { .. })
        ));
        assert_eq!(logged.db().total_rows(), 1);
        drop(logged);
        assert_eq!(read_log(&wal).unwrap().len(), 1);
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn insert_many_is_all_or_nothing() {
        let wal = tmp("many");
        let mut logged = LoggedDatabase::new(schema_db(), &wal).unwrap();
        logged
            .insert_many("t", vec![row![1i64, "a"], row![2i64, "b"]])
            .unwrap();
        // third batch member collides → whole batch rolled back and unlogged
        let err = logged.insert_many("t", vec![row![3i64, "c"], row![1i64, "dup"]]);
        assert!(matches!(err, Err(StoreError::DuplicateKey { .. })));
        assert_eq!(logged.db().total_rows(), 2);
        assert!(logged.db().get("t", &Value::Int(3)).unwrap().is_none());
        drop(logged);
        assert_eq!(read_log(&wal).unwrap().len(), 2);
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn open_checkpoint_rotate_recover_roundtrip() {
        let dir = std::env::temp_dir().join(format!("qatk_wal_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.qdb");
        let wal = dir.join("wal.log");

        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap();
        let (mut logged, report) = LoggedDatabase::open(&snap, &wal, SyncPolicy::Always).unwrap();
        assert!(!report.snapshot_loaded);
        logged.create_table("t", schema).unwrap();
        logged.insert("t", row![1i64, "one"]).unwrap();
        logged.insert("t", row![2i64, "two"]).unwrap();
        logged.checkpoint().unwrap();
        // post-checkpoint: sealed segments gone, snapshot carries watermark
        assert!(list_segments(&wal).unwrap().is_empty());
        logged.insert("t", row![3i64, "three"]).unwrap();
        logged.delete("t", &Value::Int(1)).unwrap();
        let expected = logged.db().canonical_bytes();
        drop(logged);

        let (recovered, report) = LoggedDatabase::open(&snap, &wal, SyncPolicy::Always).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replay_from, 1);
        assert_eq!(report.records_replayed, 2); // insert 3 + delete 1
        assert!(!report.torn_tail);
        assert_eq!(recovered.db().canonical_bytes(), expected);

        // a second checkpoint seals under the next epoch and still recovers
        let (mut logged, _) = LoggedDatabase::open(&snap, &wal, SyncPolicy::Always).unwrap();
        logged.insert("t", row![4i64, "four"]).unwrap();
        logged.checkpoint().unwrap();
        let expected = logged.db().canonical_bytes();
        drop(logged);
        let (recovered, report) = LoggedDatabase::open(&snap, &wal, SyncPolicy::Always).unwrap();
        assert_eq!(report.replay_from, 2);
        assert_eq!(recovered.db().canonical_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_truncates_torn_active_log() {
        let dir = std::env::temp_dir().join(format!("qatk_wal_torn_open_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.qdb");
        let wal = dir.join("wal.log");
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap();
        let (mut logged, _) = LoggedDatabase::open(&snap, &wal, SyncPolicy::OsOnly).unwrap();
        logged.create_table("t", schema).unwrap();
        // DDL is not WAL-logged: checkpoint so the table is in the snapshot
        logged.checkpoint().unwrap();
        for i in 0..4i64 {
            logged.insert("t", row![i, format!("r{i}")]).unwrap();
        }
        drop(logged);
        // tear the last record
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

        let (recovered, report) = LoggedDatabase::open(&snap, &wal, SyncPolicy::OsOnly).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.records_replayed, 3);
        assert_eq!(recovered.db().total_rows(), 3);
        // the torn bytes are gone from disk: a re-open replays cleanly
        drop(recovered);
        let (_, report) = LoggedDatabase::open(&snap, &wal, SyncPolicy::OsOnly).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.records_replayed, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keep_retention_preserves_segments_and_recovery_skips_them() {
        let dir = std::env::temp_dir().join(format!("qatk_wal_retain_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.qdb");
        let wal = dir.join("wal.log");
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap();
        let (mut logged, _) = LoggedDatabase::open_with_retention(
            &snap,
            &wal,
            SyncPolicy::Always,
            SegmentRetention::Keep(2),
        )
        .unwrap();
        logged.create_table("t", schema).unwrap();
        for ckpt in 0..4i64 {
            logged.insert("t", row![ckpt, format!("c{ckpt}")]).unwrap();
            logged.checkpoint().unwrap();
        }
        // four checkpoints sealed epochs 0..=3; Keep(2) retains 2 and 3
        let epochs: Vec<u64> = list_segments(&wal).unwrap().iter().map(|s| s.0).collect();
        assert_eq!(epochs, vec![2, 3]);
        logged.insert("t", row![99i64, "tail"]).unwrap();
        let expected = logged.db().canonical_bytes();
        drop(logged);

        // recovery must not double-replay the retained (covered) segments,
        // and must keep them on disk under the same retention policy
        let (recovered, report) = LoggedDatabase::open_with_retention(
            &snap,
            &wal,
            SyncPolicy::Always,
            SegmentRetention::Keep(2),
        )
        .unwrap();
        assert_eq!(report.segments_replayed, 0);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(recovered.db().canonical_bytes(), expected);
        let epochs: Vec<u64> = list_segments(&wal).unwrap().iter().map(|s| s.0).collect();
        assert_eq!(epochs, vec![2, 3]);
        drop(recovered);

        // re-opening under DeleteCovered finishes the deferred truncation
        let (_, _) = LoggedDatabase::open(&snap, &wal, SyncPolicy::Always).unwrap();
        assert!(list_segments(&wal).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_chunks_stream_whole_records_from_an_offset() {
        let path = tmp("chunks");
        let mut w = WalWriter::open(&path).unwrap();
        let mut lens = Vec::new();
        for i in 0..6i64 {
            let record = WalRecord::Insert {
                table: "t".into(),
                row: row![i, format!("value-{i}")],
            };
            lens.push(record.encode().unwrap().len() as u64);
            w.append(&record).unwrap();
        }
        drop(w);
        let total: u64 = lens.iter().sum();

        // from zero with a generous cap: everything in one chunk
        let chunk = read_segment_chunk(&path, 0, 1 << 20).unwrap();
        assert_eq!(chunk.end_offset, total);
        let scan = scan_bytes(&chunk.bytes).unwrap();
        assert_eq!(scan.records.len(), 6);
        assert!(!scan.torn);

        // a cap that lands mid-record returns only whole records
        let cap = (lens[0] + lens[1] + lens[2] / 2) as usize;
        let chunk = read_segment_chunk(&path, 0, cap).unwrap();
        assert_eq!(chunk.end_offset, lens[0] + lens[1]);
        assert_eq!(scan_bytes(&chunk.bytes).unwrap().records.len(), 2);

        // resuming from a record boundary picks up the rest
        let chunk = read_segment_chunk(&path, lens[0] + lens[1], 1 << 20).unwrap();
        assert_eq!(chunk.end_offset, total);
        assert_eq!(scan_bytes(&chunk.bytes).unwrap().records.len(), 4);

        // at the tail: empty chunk, offset unchanged
        let chunk = read_segment_chunk(&path, total, 1 << 20).unwrap();
        assert!(chunk.bytes.is_empty());
        assert_eq!(chunk.end_offset, total);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_without_snapshot_path_errors() {
        let wal = tmp("no_snap");
        let mut logged = LoggedDatabase::new(schema_db(), &wal).unwrap();
        assert!(matches!(logged.checkpoint(), Err(StoreError::Io(_))));
        cleanup(&wal);
    }

    #[test]
    fn replay_surfaces_conflicts() {
        let mut db = schema_db();
        db.insert("t", row![1i64, "exists"]).unwrap();
        let records = [WalRecord::Insert {
            table: "t".into(),
            row: row![1i64, "duplicate"],
        }];
        assert!(matches!(
            replay(&mut db, &records),
            Err(StoreError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn empty_log_reads_empty() {
        let path = tmp("empty");
        let _ = WalWriter::open(&path).unwrap();
        assert!(read_log(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
