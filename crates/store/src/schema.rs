//! Table schemas: named, typed columns with constraints.

use crate::error::{Result, StoreError};
use crate::value::{DataType, Value};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
    pub unique: bool,
}

impl ColumnDef {
    /// A NOT NULL, non-unique column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
            unique: false,
        }
    }

    /// Make the column nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }

    /// Add a UNIQUE constraint (enforced per-table).
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }
}

/// An ordered set of columns with the index of the primary-key column.
///
/// The engine uses single-column primary keys; composite business keys are
/// modelled by an explicit surrogate key column, which is what QATK does for
/// knowledge nodes and bundles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    pk: usize,
}

impl Schema {
    /// Build a schema. `pk` is the index of the primary-key column, which is
    /// implicitly NOT NULL and UNIQUE.
    pub fn new(columns: Vec<ColumnDef>, pk: usize) -> Result<Self> {
        if columns.is_empty() {
            return Err(StoreError::InvalidSchema("schema has no columns".into()));
        }
        if pk >= columns.len() {
            return Err(StoreError::InvalidSchema(format!(
                "primary-key index {pk} out of range ({} columns)",
                columns.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if c.name.is_empty() {
                return Err(StoreError::InvalidSchema("empty column name".into()));
            }
            if !seen.insert(c.name.clone()) {
                return Err(StoreError::InvalidSchema(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
        }
        if columns[pk].nullable {
            return Err(StoreError::InvalidSchema(format!(
                "primary-key column `{}` must not be nullable",
                columns[pk].name
            )));
        }
        Ok(Schema { columns, pk })
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the primary-key column.
    pub fn pk_index(&self) -> usize {
        self.pk
    }

    /// The primary-key column definition.
    pub fn pk_column(&self) -> &ColumnDef {
        &self.columns[self.pk]
    }

    /// Resolve a column name to its index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a full row of values against the schema (arity, types,
    /// nullability). Uniqueness is enforced by the table, which owns the data.
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(StoreError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (col, val) in self.columns.iter().zip(values) {
            if val.is_null() {
                if !col.nullable {
                    return Err(StoreError::NullViolation {
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            if !val.matches(col.ty) {
                return Err(StoreError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got: val.data_type().expect("non-null value has a type"),
                });
            }
        }
        Ok(())
    }

    /// Indices of columns carrying a UNIQUE constraint (excluding the PK).
    pub fn unique_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter(move |(i, c)| *i != self.pk && c.unique)
            .map(|(i, _)| i)
    }
}

/// Fluent builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    columns: Vec<ColumnDef>,
    pk: Option<usize>,
}

impl SchemaBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column and mark it as the primary key.
    pub fn pk(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.pk = Some(self.columns.len());
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Add a NOT NULL column.
    pub fn col(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Add a nullable column.
    pub fn col_null(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty).nullable());
        self
    }

    /// Add a NOT NULL UNIQUE column.
    pub fn col_unique(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty).unique());
        self
    }

    /// Finish; errors if no primary key was declared or names collide.
    pub fn build(self) -> Result<Schema> {
        let pk = self
            .pk
            .ok_or_else(|| StoreError::InvalidSchema("no primary key declared".into()))?;
        Schema::new(self.columns, pk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .col_null("note", DataType::Text)
            .col_unique("code", DataType::Int)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds() {
        let s = demo();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.pk_index(), 0);
        assert_eq!(s.pk_column().name, "id");
        assert_eq!(s.column_index("note"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.unique_columns().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn rejects_empty_and_duplicate() {
        assert!(Schema::new(vec![], 0).is_err());
        let cols = vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("a", DataType::Int),
        ];
        assert!(matches!(
            Schema::new(cols, 0),
            Err(StoreError::InvalidSchema(_))
        ));
    }

    #[test]
    fn rejects_nullable_pk_and_bad_index() {
        let cols = vec![ColumnDef::new("a", DataType::Int).nullable()];
        assert!(Schema::new(cols, 0).is_err());
        let cols = vec![ColumnDef::new("a", DataType::Int)];
        assert!(Schema::new(cols, 5).is_err());
    }

    #[test]
    fn builder_requires_pk() {
        let r = SchemaBuilder::new().col("x", DataType::Int).build();
        assert!(r.is_err());
    }

    #[test]
    fn check_row_valid() {
        let s = demo();
        let row = vec![
            Value::Int(1),
            Value::from("part"),
            Value::Null,
            Value::Int(99),
        ];
        assert!(s.check_row(&row).is_ok());
    }

    #[test]
    fn check_row_arity() {
        let s = demo();
        assert!(matches!(
            s.check_row(&[Value::Int(1)]),
            Err(StoreError::ArityMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn check_row_type_mismatch() {
        let s = demo();
        let row = vec![
            Value::Int(1),
            Value::Int(2), // should be Text
            Value::Null,
            Value::Int(3),
        ];
        assert!(matches!(
            s.check_row(&row),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn check_row_null_violation() {
        let s = demo();
        let row = vec![
            Value::Int(1),
            Value::Null, // name is NOT NULL
            Value::Null,
            Value::Int(3),
        ];
        assert!(matches!(
            s.check_row(&row),
            Err(StoreError::NullViolation { .. })
        ));
    }
}
