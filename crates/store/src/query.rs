//! Query builder with a small planner: point lookups through the primary key,
//! unique maps or secondary indexes; range scans through ordered indexes; and
//! a full-scan fallback. All filtering re-checks the complete predicate, so
//! index routing is purely an access-path optimization.

use crate::error::{Result, StoreError};
use crate::predicate::Predicate;
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// How the planner decided to access the table; exposed for tests and the
/// ablation bench comparing indexed vs. scan candidate retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    PointLookup,
    RangeScan,
    FullScan,
}

/// A declarative query against one table.
#[derive(Debug, Clone)]
pub struct Query {
    predicate: Predicate,
    projection: Option<Vec<String>>,
    order_by: Option<(String, SortOrder)>,
    limit: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Self::new()
    }
}

impl Query {
    pub fn new() -> Self {
        Query {
            predicate: Predicate::True,
            projection: None,
            order_by: None,
            limit: None,
        }
    }

    /// Filter rows by a predicate built against column *names*; positions are
    /// resolved when the query runs.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = match self.predicate {
            Predicate::True => predicate,
            p => Predicate::And(vec![p, predicate]),
        };
        self
    }

    /// Keep only the named columns, in the given order.
    pub fn select(mut self, columns: &[&str]) -> Self {
        self.projection = Some(columns.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Sort by a column.
    pub fn order_by(mut self, column: &str, order: SortOrder) -> Self {
        self.order_by = Some((column.to_owned(), order));
        self
    }

    /// Return at most `n` rows (applied after sorting).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Run against a table, returning owned rows.
    pub fn run(&self, table: &Table) -> Result<Vec<Row>> {
        Ok(self.run_explained(table)?.0)
    }

    /// Run and also report which access path the planner chose.
    pub fn run_explained(&self, table: &Table) -> Result<(Vec<Row>, AccessPath)> {
        let schema = table.schema();

        // Plan: find an equality conjunct answerable by PK / unique / index,
        // else a range conjunct answerable by an ordered index.
        let mut planned: Option<(Vec<usize>, AccessPath)> = None;
        for col in 0..schema.arity() {
            if let Some(v) = self.predicate.pinned_value(col) {
                if let Some(slots) = table.planned_slots(col, v) {
                    planned = Some((slots, AccessPath::PointLookup));
                    break;
                }
            }
        }
        if planned.is_none() {
            for col in 0..schema.arity() {
                if let Some((lo, hi)) = self.predicate.pinned_range(col) {
                    if let Some(slots) = table.planned_range_slots(col, &lo, &hi) {
                        planned = Some((slots, AccessPath::RangeScan));
                        break;
                    }
                }
            }
        }

        let mut rows: Vec<Row> = match &planned {
            Some((slots, _)) => {
                let mut sorted = slots.clone();
                sorted.sort_unstable();
                sorted
                    .into_iter()
                    .filter_map(|s| table.row_at(s))
                    .filter(|r| self.predicate.eval(r))
                    .cloned()
                    .collect()
            }
            None => table
                .scan()
                .filter(|r| self.predicate.eval(r))
                .cloned()
                .collect(),
        };
        let path = planned.map_or(AccessPath::FullScan, |(_, p)| p);

        if let Some((col_name, order)) = &self.order_by {
            let col = schema
                .column_index(col_name)
                .ok_or_else(|| StoreError::NoSuchColumn {
                    table: table.name().to_owned(),
                    column: col_name.clone(),
                })?;
            rows.sort_by(|a, b| {
                let ord = a.values()[col].cmp(&b.values()[col]);
                match order {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                }
            });
        }

        if let Some(n) = self.limit {
            rows.truncate(n);
        }

        if let Some(cols) = &self.projection {
            let mut idxs = Vec::with_capacity(cols.len());
            for name in cols {
                let idx = schema
                    .column_index(name)
                    .ok_or_else(|| StoreError::NoSuchColumn {
                        table: table.name().to_owned(),
                        column: name.clone(),
                    })?;
                idxs.push(idx);
            }
            rows = rows.into_iter().map(|r| r.project(&idxs)).collect();
        }

        Ok((rows, path))
    }

    /// Count matching rows without materializing projections.
    pub fn count(&self, table: &Table) -> Result<usize> {
        // Reuse run_explained but without clone-heavy projection: predicate
        // evaluation dominates; queries used for counting are small in QATK.
        Ok(self.run_explained(table)?.0.len())
    }
}

/// Helpers to build predicates against column names, resolved on a schema.
pub struct Cond;

impl Cond {
    pub fn eq(table: &Table, column: &str, v: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Eq(Self::col(table, column)?, v.into()))
    }
    pub fn ne(table: &Table, column: &str, v: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Ne(Self::col(table, column)?, v.into()))
    }
    pub fn lt(table: &Table, column: &str, v: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Lt(Self::col(table, column)?, v.into()))
    }
    pub fn le(table: &Table, column: &str, v: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Le(Self::col(table, column)?, v.into()))
    }
    pub fn gt(table: &Table, column: &str, v: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Gt(Self::col(table, column)?, v.into()))
    }
    pub fn ge(table: &Table, column: &str, v: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Ge(Self::col(table, column)?, v.into()))
    }
    pub fn between(
        table: &Table,
        column: &str,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Result<Predicate> {
        Ok(Predicate::Between(
            Self::col(table, column)?,
            lo.into(),
            hi.into(),
        ))
    }
    pub fn contains(table: &Table, column: &str, needle: &str) -> Result<Predicate> {
        Ok(Predicate::Contains(
            Self::col(table, column)?,
            needle.to_owned(),
        ))
    }
    pub fn in_set(table: &Table, column: &str, vs: Vec<Value>) -> Result<Predicate> {
        Ok(Predicate::InSet(Self::col(table, column)?, vs))
    }
    pub fn is_null(table: &Table, column: &str) -> Result<Predicate> {
        Ok(Predicate::IsNull(Self::col(table, column)?))
    }

    fn col(table: &Table, column: &str) -> Result<usize> {
        table
            .schema()
            .column_index(column)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: table.name().to_owned(),
                column: column.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part_id", DataType::Text)
            .col("score", DataType::Float)
            .col("report", DataType::Text)
            .build()
            .unwrap();
        let mut t = Table::new("suggestions", schema);
        for i in 0..20i64 {
            let part = format!("P{:02}", i % 4);
            let score = (i as f64) / 10.0;
            t.insert(row![i, part, score, format!("report body {i}")])
                .unwrap();
        }
        t
    }

    #[test]
    fn full_scan_filter() {
        let t = table();
        let p = Cond::eq(&t, "part_id", "P01").unwrap();
        let (rows, path) = Query::new().filter(p).run_explained(&t).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(path, AccessPath::FullScan);
    }

    #[test]
    fn pk_point_lookup_is_planned() {
        let t = table();
        let p = Cond::eq(&t, "id", 7i64).unwrap();
        let (rows, path) = Query::new().filter(p).run_explained(&t).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(path, AccessPath::PointLookup);
    }

    #[test]
    fn secondary_index_point_lookup() {
        let mut t = table();
        t.create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();
        let p = Cond::eq(&t, "part_id", "P02").unwrap();
        let (rows, path) = Query::new().filter(p).run_explained(&t).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(path, AccessPath::PointLookup);
    }

    #[test]
    fn ordered_index_range_scan() {
        let mut t = table();
        t.create_index("by_score", "score", IndexKind::Ordered)
            .unwrap();
        let p = Cond::between(&t, "score", 0.45f64, 0.85f64).unwrap();
        let (rows, path) = Query::new().filter(p).run_explained(&t).unwrap();
        assert_eq!(path, AccessPath::RangeScan);
        assert_eq!(rows.len(), 4); // 0.5, 0.6, 0.7, 0.8
    }

    #[test]
    fn conjunction_still_filters_fully() {
        let mut t = table();
        t.create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();
        let p = Predicate::And(vec![
            Cond::eq(&t, "part_id", "P01").unwrap(),
            Cond::contains(&t, "report", "body 13").unwrap(),
        ]);
        let (rows, path) = Query::new().filter(p).run_explained(&t).unwrap();
        assert_eq!(path, AccessPath::PointLookup);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), Some(&Value::Int(13)));
    }

    #[test]
    fn order_by_and_limit() {
        let t = table();
        let rows = Query::new()
            .order_by("score", SortOrder::Desc)
            .limit(3)
            .run(&t)
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0), Some(&Value::Int(19)));
        assert_eq!(rows[2].get(0), Some(&Value::Int(17)));
    }

    #[test]
    fn projection() {
        let t = table();
        let p = Cond::eq(&t, "id", 3i64).unwrap();
        let rows = Query::new()
            .filter(p)
            .select(&["part_id", "id"])
            .run(&t)
            .unwrap();
        assert_eq!(rows[0].values(), &[Value::from("P03"), Value::Int(3)]);
    }

    #[test]
    fn bad_column_errors() {
        let t = table();
        assert!(Cond::eq(&t, "ghost", 1i64).is_err());
        assert!(Query::new().select(&["ghost"]).run(&t).is_err());
        assert!(Query::new()
            .order_by("ghost", SortOrder::Asc)
            .run(&t)
            .is_err());
    }

    #[test]
    fn count_and_in_set_and_null() {
        let t = table();
        let p = Cond::in_set(&t, "part_id", vec![Value::from("P00"), Value::from("P01")]).unwrap();
        assert_eq!(Query::new().filter(p).count(&t).unwrap(), 10);
        let p = Cond::is_null(&t, "report").unwrap();
        assert_eq!(Query::new().filter(p).count(&t).unwrap(), 0);
        let p = Cond::ne(&t, "part_id", "P00").unwrap();
        assert_eq!(Query::new().filter(p).count(&t).unwrap(), 15);
    }

    #[test]
    fn chained_filters_conjoin() {
        let t = table();
        let q = Query::new()
            .filter(Cond::eq(&t, "part_id", "P01").unwrap())
            .filter(Cond::between(&t, "score", 0.0f64, 0.55f64).unwrap());
        let rows = q.run(&t).unwrap();
        assert_eq!(rows.len(), 2); // ids 1 (0.1) and 5 (0.5)
    }
}
