//! Rows: fixed-arity vectors of [`Value`]s plus schema-aware accessors.

use crate::schema::Schema;
use crate::value::Value;

/// One stored row. The engine keeps rows schema-validated, so accessors may
/// assume positional layout matches the table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wrap a vector of values. Validation against a schema happens at the
    /// table boundary ([`Schema::check_row`]).
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// All values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the raw value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at a column position.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value by column name, resolved through the schema.
    pub fn get_named<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.column_index(name).and_then(|i| self.values.get(i))
    }

    /// Replace the value at a position, returning the previous value.
    /// Panics if out of range — callers are schema-checked.
    pub fn set(&mut self, idx: usize, value: Value) -> Value {
        std::mem::replace(&mut self.values[idx], value)
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Project onto a subset of column positions (for SELECT projections).
    pub fn project(&self, cols: &[usize]) -> Row {
        Row::new(cols.iter().map(|&i| self.values[i].clone()).collect())
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Build a row from heterogeneous `Into<Value>` items.
///
/// ```
/// use qatk_store::row;
/// let r = row![1i64, "mechanic report", 0.75f64];
/// assert_eq!(r.arity(), 3);
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    #[test]
    fn macro_and_accessors() {
        let r = row![7i64, "hello", 1.5f64];
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(0), Some(&Value::Int(7)));
        assert_eq!(r.get(1).and_then(Value::as_text), Some("hello"));
        assert_eq!(r.get(3), None);
    }

    #[test]
    fn named_access() {
        let s = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("txt", DataType::Text)
            .build()
            .unwrap();
        let r = row![1i64, "report"];
        assert_eq!(
            r.get_named(&s, "txt").and_then(Value::as_text),
            Some("report")
        );
        assert_eq!(r.get_named(&s, "nope"), None);
    }

    #[test]
    fn set_replaces() {
        let mut r = row![1i64, "a"];
        let old = r.set(1, Value::from("b"));
        assert_eq!(old, Value::from("a"));
        assert_eq!(r.get(1), Some(&Value::from("b")));
    }

    #[test]
    fn project_selects_columns() {
        let r = row![1i64, "a", 2.0f64];
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Float(2.0), Value::Int(1)]);
    }
}
