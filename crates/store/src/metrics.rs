//! Storage-layer metrics (DESIGN.md §7): WAL append/flush and transaction
//! commit paths, registered under the `qatk_store_*` prefix.

use std::sync::OnceLock;

use qatk_obs::{Counter, Histogram, Registry};

/// Handles to every `qatk_store_*` metric.
pub struct StoreMetrics {
    /// WAL records durably appended (one per committed DML operation).
    pub wal_appends_total: &'static Counter,
    /// Encoded WAL bytes written, framing and checksum included.
    pub wal_bytes_total: &'static Counter,
    /// Wall time of one WAL append, write + flush (ns).
    pub wal_flush_latency_ns: &'static Histogram,
    /// Transactions committed.
    pub txn_commits_total: &'static Counter,
    /// Transactions rolled back.
    pub txn_rollbacks_total: &'static Counter,
    /// `fdatasync` calls issued on the WAL file (see `SyncPolicy`).
    pub wal_syncs_total: &'static Counter,
    /// Completed checkpoints (snapshot + log rotation + truncation).
    pub checkpoints_total: &'static Counter,
    /// WAL records replayed during recovery.
    pub recovery_replayed_total: &'static Counter,
    /// Recoveries that truncated a torn tail off the active log.
    pub recovery_torn_tail_total: &'static Counter,
}

/// The store-layer metric handles (registered on first use).
pub fn metrics() -> &'static StoreMetrics {
    static M: OnceLock<StoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        StoreMetrics {
            wal_appends_total: r.counter(
                "qatk_store_wal_appends_total",
                "WAL records durably appended",
            ),
            wal_bytes_total: r.counter(
                "qatk_store_wal_bytes_total",
                "encoded WAL bytes written (framing + checksum included)",
            ),
            wal_flush_latency_ns: r.histogram(
                "qatk_store_wal_flush_latency_ns",
                "WAL append write+flush latency (ns)",
            ),
            txn_commits_total: r.counter("qatk_store_txn_commits_total", "transactions committed"),
            txn_rollbacks_total: r
                .counter("qatk_store_txn_rollbacks_total", "transactions rolled back"),
            wal_syncs_total: r.counter(
                "qatk_store_wal_syncs_total",
                "fdatasync calls issued on the WAL file",
            ),
            checkpoints_total: r.counter(
                "qatk_store_checkpoints_total",
                "completed checkpoints (snapshot + rotation + truncation)",
            ),
            recovery_replayed_total: r.counter(
                "qatk_store_recovery_replayed_total",
                "WAL records replayed during recovery",
            ),
            recovery_torn_tail_total: r.counter(
                "qatk_store_recovery_torn_tail_total",
                "recoveries that truncated a torn tail off the active log",
            ),
        }
    })
}
