//! Length-prefixed binary encoding of values, schemas, tables and databases.
//!
//! The format is deliberately simple and versioned:
//!
//! ```text
//! snapshot  := magic("QATKSTOR") version:u32 wal_replay_from:u64
//!              table_count:u32 table* checksum:u64
//! table     := name schema index_count:u32 index_spec* row_count:u64 row*
//! schema    := arity:u16 pk:u16 column*
//! column    := name ty:u8 flags:u8          (flags: bit0 nullable, bit1 unique)
//! index_spec:= name column_name kind:u8     (0 hash, 1 ordered)
//! row       := value*                       (arity known from schema)
//! value     := tag:u8 payload
//! name/text := len:u32 utf8-bytes
//! ```
//!
//! The trailing checksum is FNV-1a 64 over everything before it.

use bytes::{Buf, BufMut};

use crate::error::{Result, StoreError};
use crate::index::IndexKind;
use crate::row::Row;
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

pub(crate) const MAGIC: &[u8; 8] = b"QATKSTOR";
/// Snapshot format version. V2 added the `wal_replay_from` watermark (the
/// first WAL epoch a recovery must replay on top of this snapshot).
pub(crate) const VERSION: u32 = 2;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_BLOB: u8 = 5;

/// FNV-1a 64-bit hash, used as the snapshot checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("truncated string body".into()));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| StoreError::Corrupt("invalid utf8".into()))
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Bool(b) => {
            out.put_u8(TAG_BOOL);
            out.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i64_le(*i);
        }
        Value::Float(x) => {
            out.put_u8(TAG_FLOAT);
            out.put_f64_le(*x);
        }
        Value::Text(s) => {
            out.put_u8(TAG_TEXT);
            put_str(out, s);
        }
        Value::Blob(b) => {
            out.put_u8(TAG_BLOB);
            out.put_u32_le(b.len() as u32);
            out.put_slice(b);
        }
    }
}

pub(crate) fn get_value(buf: &mut &[u8]) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(StoreError::Corrupt("truncated value tag".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            if !buf.has_remaining() {
                return Err(StoreError::Corrupt("truncated bool".into()));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(StoreError::Corrupt("truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(StoreError::Corrupt("truncated float".into()));
            }
            Value::Float(buf.get_f64_le())
        }
        TAG_TEXT => Value::Text(get_str(buf)?),
        TAG_BLOB => {
            if buf.remaining() < 4 {
                return Err(StoreError::Corrupt("truncated blob length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(StoreError::Corrupt("truncated blob body".into()));
            }
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            Value::Blob(bytes)
        }
        other => return Err(StoreError::Corrupt(format!("unknown value tag {other}"))),
    })
}

fn ty_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => TAG_BOOL,
        DataType::Int => TAG_INT,
        DataType::Float => TAG_FLOAT,
        DataType::Text => TAG_TEXT,
        DataType::Blob => TAG_BLOB,
    }
}

fn tag_ty(tag: u8) -> Result<DataType> {
    Ok(match tag {
        TAG_BOOL => DataType::Bool,
        TAG_INT => DataType::Int,
        TAG_FLOAT => DataType::Float,
        TAG_TEXT => DataType::Text,
        TAG_BLOB => DataType::Blob,
        other => return Err(StoreError::Corrupt(format!("unknown type tag {other}"))),
    })
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.put_u16_le(schema.arity() as u16);
    out.put_u16_le(schema.pk_index() as u16);
    for col in schema.columns() {
        put_str(out, &col.name);
        out.put_u8(ty_tag(col.ty));
        let flags = u8::from(col.nullable) | (u8::from(col.unique) << 1);
        out.put_u8(flags);
    }
}

pub(crate) fn get_schema(buf: &mut &[u8]) -> Result<Schema> {
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("truncated schema header".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let pk = buf.get_u16_le() as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = get_str(buf)?;
        if buf.remaining() < 2 {
            return Err(StoreError::Corrupt("truncated column".into()));
        }
        let ty = tag_ty(buf.get_u8())?;
        let flags = buf.get_u8();
        let mut col = ColumnDef::new(name, ty);
        if flags & 1 != 0 {
            col = col.nullable();
        }
        if flags & 2 != 0 {
            col = col.unique();
        }
        cols.push(col);
    }
    Schema::new(cols, pk).map_err(|e| StoreError::Corrupt(format!("invalid schema: {e}")))
}

pub(crate) fn put_table(out: &mut Vec<u8>, table: &Table) {
    put_str(out, table.name());
    put_schema(out, table.schema());
    let specs = table.index_specs();
    out.put_u32_le(specs.len() as u32);
    for (name, column, kind) in &specs {
        put_str(out, name);
        put_str(out, column);
        out.put_u8(match kind {
            IndexKind::Hash => 0,
            IndexKind::Ordered => 1,
        });
    }
    out.put_u64_le(table.len() as u64);
    for row in table.scan() {
        for v in row.values() {
            put_value(out, v);
        }
    }
}

/// Like [`put_table`] but rows are emitted in primary-key order (by encoded
/// key bytes) instead of physical slot order. The slotted heap reuses freed
/// slots, so two logically identical tables that took different
/// insert/delete paths encode differently under [`put_table`]; the canonical
/// form is what durability tests compare byte-for-byte.
pub(crate) fn put_table_canonical(out: &mut Vec<u8>, table: &Table) {
    put_str(out, table.name());
    put_schema(out, table.schema());
    let mut specs = table.index_specs();
    specs.sort();
    out.put_u32_le(specs.len() as u32);
    for (name, column, kind) in &specs {
        put_str(out, name);
        put_str(out, column);
        out.put_u8(match kind {
            IndexKind::Hash => 0,
            IndexKind::Ordered => 1,
        });
    }
    out.put_u64_le(table.len() as u64);
    let pk = table.schema().pk_index();
    let mut rows: Vec<_> = table.scan().collect();
    rows.sort_by_cached_key(|row| {
        let mut key = Vec::new();
        if let Some(v) = row.get(pk) {
            put_value(&mut key, v);
        }
        key
    });
    for row in rows {
        for v in row.values() {
            put_value(out, v);
        }
    }
}

pub(crate) fn get_table(buf: &mut &[u8]) -> Result<Table> {
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("truncated index count".into()));
    }
    let n_idx = buf.get_u32_le() as usize;
    let mut specs = Vec::with_capacity(n_idx);
    for _ in 0..n_idx {
        let iname = get_str(buf)?;
        let col = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("truncated index kind".into()));
        }
        let kind = match buf.get_u8() {
            0 => IndexKind::Hash,
            1 => IndexKind::Ordered,
            other => return Err(StoreError::Corrupt(format!("unknown index kind {other}"))),
        };
        specs.push((iname, col, kind));
    }
    if buf.remaining() < 8 {
        return Err(StoreError::Corrupt("truncated row count".into()));
    }
    let n_rows = buf.get_u64_le() as usize;
    let arity = schema.arity();
    let mut table = Table::new(name, schema);
    for _ in 0..n_rows {
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(get_value(buf)?);
        }
        table
            .insert(Row::new(values))
            .map_err(|e| StoreError::Corrupt(format!("row rejected on load: {e}")))?;
    }
    for (iname, col, kind) in specs {
        table
            .create_index(iname, &col, kind)
            .map_err(|e| StoreError::Corrupt(format!("index rejected on load: {e}")))?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::SchemaBuilder;

    #[test]
    fn value_roundtrip_all_types() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Text("Lüfter funktioniert nicht".into()),
            Value::Text(String::new()),
            Value::Blob(vec![0, 1, 2, 255]),
            Value::Blob(vec![]),
        ];
        let mut out = Vec::new();
        for v in &values {
            put_value(&mut out, v);
        }
        let mut buf = out.as_slice();
        for v in &values {
            let got = get_value(&mut buf).unwrap();
            // Value's Eq uses total_cmp so NaN == NaN holds.
            assert_eq!(&got, v);
        }
        assert!(!buf.has_remaining());
    }

    #[test]
    fn truncated_value_errors() {
        let mut out = Vec::new();
        put_value(&mut out, &Value::Text("hello".into()));
        for cut in 0..out.len() {
            let mut buf = &out[..cut];
            assert!(get_value(&mut buf).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let data = [99u8];
        let mut buf = &data[..];
        assert!(matches!(get_value(&mut buf), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn schema_roundtrip() {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .col_null("note", DataType::Text)
            .col_unique("code", DataType::Int)
            .build()
            .unwrap();
        let mut out = Vec::new();
        put_schema(&mut out, &schema);
        let mut buf = out.as_slice();
        let got = get_schema(&mut buf).unwrap();
        assert_eq!(got, schema);
    }

    #[test]
    fn table_roundtrip_with_index() {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part", DataType::Text)
            .build()
            .unwrap();
        let mut t = Table::new("bundles", schema);
        for i in 0..50i64 {
            t.insert(row![i, format!("P{:02}", i % 5)]).unwrap();
        }
        t.create_index("by_part", "part", IndexKind::Hash).unwrap();

        let mut out = Vec::new();
        put_table(&mut out, &t);
        let mut buf = out.as_slice();
        let got = get_table(&mut buf).unwrap();
        assert_eq!(got.len(), 50);
        assert_eq!(got.name(), "bundles");
        assert_eq!(got.index_names(), vec!["by_part"]);
        assert_eq!(got.lookup("part", &Value::from("P03")).unwrap().len(), 10);
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
