//! CSV import/export for tables — the interchange path for external flat
//! files (the real NHTSA ODI complaint database ships as flat files, paper
//! §5.4). Hand-rolled RFC-4180-style reader/writer: quoted fields, embedded
//! quotes (`""`), commas and newlines inside quotes.

use crate::error::{Result, StoreError};
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Split one CSV document into records of fields.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(StoreError::Corrupt(
                        "csv: quote inside unquoted field".into(),
                    ));
                }
                in_quotes = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => { /* tolerate CRLF */ }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(StoreError::Corrupt("csv: unterminated quote".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Quote a field if it needs quoting.
fn write_field(out: &mut String, field: &str) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Render a value for CSV. NULL becomes the empty field.
fn value_to_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => x.to_string(),
        Value::Text(s) => s.clone(),
        Value::Blob(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
    }
}

/// Parse a field into a value of the column's type. Empty fields are NULL
/// for nullable columns and empty text for TEXT NOT NULL. (CSV cannot
/// distinguish NULL from the empty string, so an empty string stored in a
/// *nullable* TEXT column reads back as NULL — the standard flat-file
/// convention.)
fn field_to_value(field: &str, ty: DataType, nullable: bool) -> Result<Value> {
    if field.is_empty() {
        return Ok(if nullable {
            Value::Null
        } else if ty == DataType::Text {
            Value::Text(String::new())
        } else {
            return Err(StoreError::Corrupt(format!(
                "csv: empty field for non-nullable {ty}"
            )));
        });
    }
    Ok(match ty {
        DataType::Bool => Value::Bool(match field {
            "true" | "1" => true,
            "false" | "0" => false,
            other => return Err(StoreError::Corrupt(format!("csv: bad bool `{other}`"))),
        }),
        DataType::Int => Value::Int(
            field
                .parse()
                .map_err(|_| StoreError::Corrupt(format!("csv: bad int `{field}`")))?,
        ),
        DataType::Float => Value::Float(
            field
                .parse()
                .map_err(|_| StoreError::Corrupt(format!("csv: bad float `{field}`")))?,
        ),
        DataType::Text => Value::Text(field.to_owned()),
        DataType::Blob => {
            if !field.len().is_multiple_of(2) {
                return Err(StoreError::Corrupt("csv: odd hex blob".into()));
            }
            let mut bytes = Vec::with_capacity(field.len() / 2);
            for i in (0..field.len()).step_by(2) {
                let byte = u8::from_str_radix(&field[i..i + 2], 16)
                    .map_err(|_| StoreError::Corrupt("csv: bad hex blob".into()))?;
                bytes.push(byte);
            }
            Value::Blob(bytes)
        }
    })
}

/// Export a table as CSV, header row first.
pub fn export_table(table: &Table) -> String {
    let mut out = String::new();
    let mut first = true;
    for col in table.schema().columns() {
        if !first {
            out.push(',');
        }
        write_field(&mut out, &col.name);
        first = false;
    }
    out.push('\n');
    for row in table.scan() {
        let mut first = true;
        for v in row.values() {
            if !first {
                out.push(',');
            }
            write_field(&mut out, &value_to_field(v));
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Import CSV into a fresh table with the given schema. The header must
/// name every schema column (in schema order). Returns the loaded table.
pub fn import_table(name: &str, schema: Schema, csv: &str) -> Result<Table> {
    let records = parse_csv(csv)?;
    let mut iter = records.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| StoreError::Corrupt("csv: missing header".into()))?;
    let expected: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    if header != expected {
        return Err(StoreError::Corrupt(format!(
            "csv: header {header:?} does not match schema {expected:?}"
        )));
    }
    let mut table = Table::new(name, schema);
    for (line, record) in iter.enumerate() {
        if record.len() != table.schema().arity() {
            return Err(StoreError::Corrupt(format!(
                "csv: record {} has {} fields, schema has {}",
                line + 2,
                record.len(),
                table.schema().arity()
            )));
        }
        let mut values = Vec::with_capacity(record.len());
        for (field, col) in record.iter().zip(table.schema().columns()) {
            values.push(field_to_value(field, col.ty, col.nullable)?);
        }
        table.insert(Row::new(values))?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("text", DataType::Text)
            .col_null("score", DataType::Float)
            .col("ok", DataType::Bool)
            .col_null("blob", DataType::Blob)
            .build()
            .unwrap()
    }

    #[test]
    fn parse_basic_and_quoted() {
        let rows = parse_csv("a,b,c\n1,\"two, three\",\"with \"\"quotes\"\"\"\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "two, three", "with \"quotes\""]);
    }

    #[test]
    fn parse_newline_in_quotes_and_crlf() {
        let rows = parse_csv("a,b\r\n\"multi\nline\",x\r\n").unwrap();
        assert_eq!(rows[1][0], "multi\nline");
        assert_eq!(rows[1][1], "x");
    }

    #[test]
    fn parse_missing_trailing_newline() {
        let rows = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_csv("a,\"unterminated\n").is_err());
        assert!(parse_csv("a,b\"c\n").is_err());
        assert!(parse_csv("").unwrap().is_empty());
    }

    #[test]
    fn export_import_roundtrip() {
        let mut t = Table::new("x", schema());
        t.insert(row![
            1i64,
            "plain",
            0.5f64,
            true,
            Value::Blob(vec![0xab, 0x01])
        ])
        .unwrap();
        t.insert(row![
            2i64,
            "with, comma and \"quote\"\nand newline",
            Value::Null,
            false,
            Value::Null
        ])
        .unwrap();

        let csv = export_table(&t);
        let back = import_table("x", schema(), &csv).unwrap();
        assert_eq!(back.len(), 2);
        let r2 = back.get(&Value::Int(2)).unwrap();
        assert_eq!(
            r2.get(1).and_then(Value::as_text),
            Some("with, comma and \"quote\"\nand newline")
        );
        assert!(r2.get(2).unwrap().is_null());
        let r1 = back.get(&Value::Int(1)).unwrap();
        assert_eq!(r1.get(4).and_then(Value::as_blob), Some(&[0xab, 0x01][..]));
        assert_eq!(r1.get(3).and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn import_validates_header_and_arity() {
        assert!(matches!(
            import_table("x", schema(), "wrong,header\n"),
            Err(StoreError::Corrupt(_))
        ));
        let bad_arity = "id,text,score,ok,blob\n1,only-two\n";
        assert!(import_table("x", schema(), bad_arity).is_err());
        assert!(import_table("x", schema(), "").is_err());
    }

    #[test]
    fn import_validates_types() {
        let bad_int = "id,text,score,ok,blob\nnot-a-number,t,,true,\n";
        assert!(import_table("x", schema(), bad_int).is_err());
        let bad_bool = "id,text,score,ok,blob\n1,t,,maybe,\n";
        assert!(import_table("x", schema(), bad_bool).is_err());
        let bad_hex = "id,text,score,ok,blob\n1,t,,true,zz\n";
        assert!(import_table("x", schema(), bad_hex).is_err());
    }

    #[test]
    fn non_nullable_empty_text_is_empty_string() {
        let csv = "id,text,score,ok,blob\n1,,,true,\n";
        let t = import_table("x", schema(), csv).unwrap();
        let r = t.get(&Value::Int(1)).unwrap();
        assert_eq!(r.get(1).and_then(Value::as_text), Some(""));
        // but an empty non-nullable INT is an error
        let int_schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("n", DataType::Int)
            .build()
            .unwrap();
        assert!(import_table("y", int_schema, "id,n\n1,\n").is_err());
    }
}
