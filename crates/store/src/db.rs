//! Databases: named tables plus a shared, lock-guarded handle.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Result, StoreError};
use crate::query::Query;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::txn::UndoOp;
use crate::value::Value;

/// An in-memory (snapshot-persistable) relational database.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    /// Undo log of the active transaction, if any. DML inside a transaction
    /// records its inverse here; DDL is intentionally non-transactional.
    pub(crate) txn: Option<Vec<UndoOp>>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StoreError::TableExists(name));
        }
        self.tables.insert(name.clone(), Table::new(name, schema));
        Ok(())
    }

    /// Drop a table entirely.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    /// Mutably borrow a table. Bypasses the transaction log — prefer the
    /// `insert/update/delete` methods on `Database` when a transaction may be
    /// active.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Insert a row, transaction-aware.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<Value> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        let pk = t.insert(row)?;
        if let Some(log) = &mut self.txn {
            log.push(UndoOp::UnInsert {
                table: table.to_owned(),
                pk: pk.clone(),
            });
        }
        Ok(pk)
    }

    /// Update a row by primary key, transaction-aware.
    pub fn update(&mut self, table: &str, pk: &Value, row: Row) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        let old = t.update(pk, row)?;
        if let Some(log) = &mut self.txn {
            log.push(UndoOp::Restore {
                table: table.to_owned(),
                pk: pk.clone(),
                row: old,
            });
        }
        Ok(())
    }

    /// Delete a row by primary key, transaction-aware.
    pub fn delete(&mut self, table: &str, pk: &Value) -> Result<Row> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        let row = t.delete(pk)?;
        if let Some(log) = &mut self.txn {
            log.push(UndoOp::ReInsert {
                table: table.to_owned(),
                row: row.clone(),
            });
        }
        Ok(row)
    }

    /// Fetch by primary key.
    pub fn get(&self, table: &str, pk: &Value) -> Result<Option<&Row>> {
        Ok(self.table(table)?.get(pk))
    }

    /// Run a query against a table.
    pub fn query(&self, table: &str, query: &Query) -> Result<Vec<Row>> {
        query.run(self.table(table)?)
    }

    /// Total number of live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    pub(crate) fn tables_sorted(&self) -> Vec<&Table> {
        let mut ts: Vec<&Table> = self.tables.values().collect();
        ts.sort_by_key(|t| t.name().to_owned());
        ts
    }

    pub(crate) fn insert_table_raw(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), table);
    }
}

/// A cheaply clonable, thread-safe database handle.
///
/// QATK's pipeline stages (corpus loader, knowledge-base builder,
/// recommendation persister) share one database; `parking_lot::RwLock` keeps
/// readers concurrent and writers exclusive.
#[derive(Debug, Clone, Default)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
}

impl SharedDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_database(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Run a closure with shared (read) access.
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.read())
    }

    /// Run a closure with exclusive (write) access.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cond;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap()
    }

    #[test]
    fn ddl_lifecycle() {
        let mut db = Database::new();
        db.create_table("parts", schema()).unwrap();
        assert!(db.has_table("parts"));
        assert!(matches!(
            db.create_table("parts", schema()),
            Err(StoreError::TableExists(_))
        ));
        db.create_table("codes", schema()).unwrap();
        assert_eq!(db.table_names(), vec!["codes", "parts"]);
        db.drop_table("codes").unwrap();
        assert!(matches!(
            db.drop_table("codes"),
            Err(StoreError::NoSuchTable(_))
        ));
        assert!(db.table("codes").is_err());
    }

    #[test]
    fn dml_roundtrip() {
        let mut db = Database::new();
        db.create_table("parts", schema()).unwrap();
        db.insert("parts", row![1i64, "radiator"]).unwrap();
        db.insert("parts", row![2i64, "fan"]).unwrap();
        assert_eq!(db.total_rows(), 2);
        assert!(db.get("parts", &Value::Int(1)).unwrap().is_some());

        db.update("parts", &Value::Int(2), row![2i64, "blower"])
            .unwrap();
        let q =
            Query::new().filter(Cond::eq(db.table("parts").unwrap(), "name", "blower").unwrap());
        assert_eq!(db.query("parts", &q).unwrap().len(), 1);

        db.delete("parts", &Value::Int(1)).unwrap();
        assert_eq!(db.total_rows(), 1);
        assert!(db.insert("ghost", row![1i64, "x"]).is_err());
        assert!(db.update("ghost", &Value::Int(1), row![1i64, "x"]).is_err());
        assert!(db.delete("ghost", &Value::Int(1)).is_err());
        assert!(db.get("ghost", &Value::Int(1)).is_err());
    }

    #[test]
    fn shared_database_concurrent_access() {
        let shared = SharedDatabase::new();
        shared.write(|db| db.create_table("parts", schema()).unwrap());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    s.write(|db| db.insert("parts", row![i as i64, format!("p{i}")]).unwrap());
                    s.read(|db| db.total_rows())
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
        assert_eq!(shared.read(|db| db.total_rows()), 8);
    }
}
