//! Grouped aggregation over tables: the `GROUP BY`-style queries QATK's
//! reporting side needs (code frequencies per part, error distributions,
//! corpus statistics) without round-tripping rows through application code.

use std::collections::HashMap;

use crate::error::{Result, StoreError};
use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::Value;

/// An aggregate function over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of rows in the group (column is ignored for counting but kept
    /// for uniform plumbing).
    Count,
    /// Sum of numeric values (Int + Float mix allowed; NULLs skipped).
    Sum,
    /// Arithmetic mean of numeric values (NULLs skipped).
    Avg,
    /// Minimum under the engine's total order (NULLs skipped).
    Min,
    /// Maximum under the engine's total order (NULLs skipped).
    Max,
}

/// One group's aggregate output.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    pub key: Value,
    pub value: Value,
}

/// A grouped-aggregation query.
#[derive(Debug, Clone)]
pub struct GroupBy {
    key_column: String,
    agg: Aggregate,
    agg_column: String,
    filter: Predicate,
}

impl GroupBy {
    /// Aggregate `agg(agg_column)` grouped by `key_column`.
    pub fn new(
        key_column: impl Into<String>,
        agg: Aggregate,
        agg_column: impl Into<String>,
    ) -> Self {
        GroupBy {
            key_column: key_column.into(),
            agg,
            agg_column: agg_column.into(),
            filter: Predicate::True,
        }
    }

    /// Shorthand: row counts per key.
    pub fn count(key_column: impl Into<String>) -> Self {
        let key = key_column.into();
        GroupBy::new(key.clone(), Aggregate::Count, key)
    }

    /// Restrict to rows matching a predicate (built against column
    /// positions, e.g. via [`crate::query::Cond`]).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filter = predicate;
        self
    }

    /// Run against a table; groups are returned sorted by key.
    pub fn run(&self, table: &Table) -> Result<Vec<GroupRow>> {
        let schema = table.schema();
        let key_idx =
            schema
                .column_index(&self.key_column)
                .ok_or_else(|| StoreError::NoSuchColumn {
                    table: table.name().to_owned(),
                    column: self.key_column.clone(),
                })?;
        let agg_idx =
            schema
                .column_index(&self.agg_column)
                .ok_or_else(|| StoreError::NoSuchColumn {
                    table: table.name().to_owned(),
                    column: self.agg_column.clone(),
                })?;

        #[derive(Default)]
        struct Acc {
            count: usize,
            sum: f64,
            numeric: usize,
            min: Option<Value>,
            max: Option<Value>,
        }
        let mut groups: HashMap<Value, Acc> = HashMap::new();
        for row in table.scan() {
            if !self.filter.eval(row) {
                continue;
            }
            let key = row.values()[key_idx].clone();
            let acc = groups.entry(key).or_default();
            acc.count += 1;
            let v = &row.values()[agg_idx];
            if !v.is_null() {
                if let Some(x) = v.as_int().map(|i| i as f64).or_else(|| v.as_float()) {
                    acc.sum += x;
                    acc.numeric += 1;
                }
                if acc.min.as_ref().is_none_or(|m| v < m) {
                    acc.min = Some(v.clone());
                }
                if acc.max.as_ref().is_none_or(|m| v > m) {
                    acc.max = Some(v.clone());
                }
            }
        }

        let mut out: Vec<GroupRow> = groups
            .into_iter()
            .map(|(key, acc)| {
                let value = match self.agg {
                    Aggregate::Count => Value::Int(acc.count as i64),
                    Aggregate::Sum => Value::Float(acc.sum),
                    Aggregate::Avg => {
                        if acc.numeric == 0 {
                            Value::Null
                        } else {
                            Value::Float(acc.sum / acc.numeric as f64)
                        }
                    }
                    Aggregate::Min => acc.min.unwrap_or(Value::Null),
                    Aggregate::Max => acc.max.unwrap_or(Value::Null),
                };
                GroupRow { key, value }
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(out)
    }

    /// Run and return the groups sorted by *descending aggregate value*
    /// (frequency-ranking order — what the code-frequency baseline needs).
    pub fn run_ranked(&self, table: &Table) -> Result<Vec<GroupRow>> {
        let mut rows = self.run(table)?;
        rows.sort_by(|a, b| b.value.cmp(&a.value).then(a.key.cmp(&b.key)));
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cond;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part_id", DataType::Text)
            .col("error_code", DataType::Text)
            .col_null("score", DataType::Float)
            .build()
            .unwrap();
        let mut t = Table::new("assignments", schema);
        let rows = [
            (1, "P-01", "E1", Some(0.9)),
            (2, "P-01", "E1", Some(0.7)),
            (3, "P-01", "E2", Some(0.5)),
            (4, "P-02", "E3", None),
            (5, "P-02", "E3", Some(0.2)),
            (6, "P-02", "E1", Some(0.4)),
        ];
        for (id, p, c, s) in rows {
            t.insert(row![
                id as i64,
                p,
                c,
                s.map(Value::Float).unwrap_or(Value::Null)
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn count_per_key() {
        let t = table();
        let groups = GroupBy::count("part_id").run(&t).unwrap();
        assert_eq!(
            groups,
            vec![
                GroupRow {
                    key: Value::from("P-01"),
                    value: Value::Int(3)
                },
                GroupRow {
                    key: Value::from("P-02"),
                    value: Value::Int(3)
                },
            ]
        );
    }

    #[test]
    fn count_with_filter_is_frequency_ranking() {
        let t = table();
        let groups = GroupBy::count("error_code")
            .filter(Cond::eq(&t, "part_id", "P-01").unwrap())
            .run_ranked(&t)
            .unwrap();
        let codes: Vec<&str> = groups.iter().map(|g| g.key.as_text().unwrap()).collect();
        assert_eq!(codes, vec!["E1", "E2"]);
        assert_eq!(groups[0].value, Value::Int(2));
    }

    #[test]
    fn sum_avg_skip_nulls() {
        let t = table();
        let sums = GroupBy::new("part_id", Aggregate::Sum, "score")
            .run(&t)
            .unwrap();
        assert_eq!(sums[0].key, Value::from("P-01"));
        assert!((sums[0].value.as_float().unwrap() - 2.1).abs() < 1e-9);
        let avgs = GroupBy::new("part_id", Aggregate::Avg, "score")
            .run(&t)
            .unwrap();
        // P-02: (0.2 + 0.4) / 2, the NULL row is skipped
        assert!((avgs[1].value.as_float().unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn min_max_use_total_order() {
        let t = table();
        let mins = GroupBy::new("part_id", Aggregate::Min, "score")
            .run(&t)
            .unwrap();
        assert_eq!(mins[1].value, Value::Float(0.2));
        let maxs = GroupBy::new("part_id", Aggregate::Max, "error_code")
            .run(&t)
            .unwrap();
        assert_eq!(maxs[0].value, Value::from("E2"));
    }

    #[test]
    fn all_null_group_aggregates_to_null() {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("k", DataType::Text)
            .col_null("v", DataType::Float)
            .build()
            .unwrap();
        let mut t = Table::new("x", schema);
        t.insert(row![1i64, "a", Value::Null]).unwrap();
        let avg = GroupBy::new("k", Aggregate::Avg, "v").run(&t).unwrap();
        assert_eq!(avg[0].value, Value::Null);
        let min = GroupBy::new("k", Aggregate::Min, "v").run(&t).unwrap();
        assert_eq!(min[0].value, Value::Null);
    }

    #[test]
    fn unknown_columns_error() {
        let t = table();
        assert!(GroupBy::count("ghost").run(&t).is_err());
        assert!(GroupBy::new("part_id", Aggregate::Sum, "ghost")
            .run(&t)
            .is_err());
    }

    #[test]
    fn empty_table_yields_no_groups() {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .build()
            .unwrap();
        let t = Table::new("empty", schema);
        assert!(GroupBy::count("id").run(&t).unwrap().is_empty());
    }
}
