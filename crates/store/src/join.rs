//! Equality joins between tables.
//!
//! QATK's schema is relational in the classic sense — bundles reference part
//! IDs and error codes held in their own tables (paper Fig. 3 / §4.5.1) —
//! and the QUEST screens need the joined view. This module provides a hash
//! join (build on the smaller side, probe with the larger) plus a left-outer
//! variant for optional references.

use std::collections::HashMap;

use crate::error::{Result, StoreError};
use crate::predicate::Predicate;
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Only matching pairs.
    Inner,
    /// Every left row; unmatched right side becomes NULLs.
    LeftOuter,
}

/// A join specification between two tables on one equality column each.
#[derive(Debug, Clone)]
pub struct Join {
    left_column: String,
    right_column: String,
    kind: JoinKind,
    filter: Predicate,
}

impl Join {
    /// Inner join `left.left_column = right.right_column`.
    pub fn inner(left_column: impl Into<String>, right_column: impl Into<String>) -> Self {
        Join {
            left_column: left_column.into(),
            right_column: right_column.into(),
            kind: JoinKind::Inner,
            filter: Predicate::True,
        }
    }

    /// Left-outer join `left.left_column = right.right_column`.
    pub fn left_outer(left_column: impl Into<String>, right_column: impl Into<String>) -> Self {
        Join {
            kind: JoinKind::LeftOuter,
            ..Join::inner(left_column, right_column)
        }
    }

    /// Filter applied to *left* rows before joining (column positions refer
    /// to the left table's schema).
    pub fn filter_left(mut self, predicate: Predicate) -> Self {
        self.filter = predicate;
        self
    }

    /// Execute. Output rows are the concatenation of left and right values
    /// (right values all NULL for unmatched left rows in a left-outer join).
    /// NULL join keys never match, as in SQL.
    pub fn run(&self, left: &Table, right: &Table) -> Result<Vec<Row>> {
        let lcol = left
            .schema()
            .column_index(&self.left_column)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: left.name().to_owned(),
                column: self.left_column.clone(),
            })?;
        let rcol = right
            .schema()
            .column_index(&self.right_column)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: right.name().to_owned(),
                column: self.right_column.clone(),
            })?;

        // build side: hash the right table
        let mut build: HashMap<&Value, Vec<&Row>> = HashMap::new();
        for row in right.scan() {
            let key = &row.values()[rcol];
            if key.is_null() {
                continue;
            }
            build.entry(key).or_default().push(row);
        }

        let right_arity = right.schema().arity();
        let mut out = Vec::new();
        for lrow in left.scan() {
            if !self.filter.eval(lrow) {
                continue;
            }
            let key = &lrow.values()[lcol];
            let matches = if key.is_null() { None } else { build.get(key) };
            match (matches, self.kind) {
                (Some(rrows), _) => {
                    for rrow in rrows {
                        let mut values = Vec::with_capacity(lrow.arity() + right_arity);
                        values.extend_from_slice(lrow.values());
                        values.extend_from_slice(rrow.values());
                        out.push(Row::new(values));
                    }
                }
                (None, JoinKind::LeftOuter) => {
                    let mut values = Vec::with_capacity(lrow.arity() + right_arity);
                    values.extend_from_slice(lrow.values());
                    values.extend(std::iter::repeat_n(Value::Null, right_arity));
                    out.push(Row::new(values));
                }
                (None, JoinKind::Inner) => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cond;
    use crate::row;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn tables() -> (Table, Table) {
        let bundles = SchemaBuilder::new()
            .pk("ref_no", DataType::Text)
            .col("part_id", DataType::Text)
            .col_null("error_code", DataType::Text)
            .build()
            .unwrap();
        let mut b = Table::new("bundles", bundles);
        b.insert(row!["R-1", "P-01", "E1"]).unwrap();
        b.insert(row!["R-2", "P-01", "E2"]).unwrap();
        b.insert(row!["R-3", "P-02", Value::Null]).unwrap();
        b.insert(row!["R-4", "P-03", "E9"]).unwrap(); // no code row

        let codes = SchemaBuilder::new()
            .pk("code", DataType::Text)
            .col("description", DataType::Text)
            .build()
            .unwrap();
        let mut c = Table::new("codes", codes);
        c.insert(row!["E1", "contact melted"]).unwrap();
        c.insert(row!["E2", "no power"]).unwrap();
        (b, c)
    }

    #[test]
    fn inner_join_matches_pairs() {
        let (b, c) = tables();
        let rows = Join::inner("error_code", "code").run(&b, &c).unwrap();
        assert_eq!(rows.len(), 2);
        let r1 = rows
            .iter()
            .find(|r| r.get(0) == Some(&Value::from("R-1")))
            .unwrap();
        assert_eq!(r1.get(4).and_then(Value::as_text), Some("contact melted"));
        // unmatched (R-4) and NULL-key (R-3) rows are dropped
        assert!(!rows.iter().any(|r| r.get(0) == Some(&Value::from("R-3"))));
        assert!(!rows.iter().any(|r| r.get(0) == Some(&Value::from("R-4"))));
    }

    #[test]
    fn left_outer_keeps_unmatched_with_nulls() {
        let (b, c) = tables();
        let rows = Join::left_outer("error_code", "code").run(&b, &c).unwrap();
        assert_eq!(rows.len(), 4);
        let r3 = rows
            .iter()
            .find(|r| r.get(0) == Some(&Value::from("R-3")))
            .unwrap();
        assert!(r3.get(3).unwrap().is_null());
        assert!(r3.get(4).unwrap().is_null());
        let r4 = rows
            .iter()
            .find(|r| r.get(0) == Some(&Value::from("R-4")))
            .unwrap();
        assert!(r4.get(3).unwrap().is_null()); // E9 has no code row
    }

    #[test]
    fn one_to_many_duplicates_left_row() {
        let (_, c) = tables();
        let parts = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("code", DataType::Text)
            .build()
            .unwrap();
        let mut p = Table::new("multi", parts);
        p.insert(row![1i64, "E1"]).unwrap();
        let mut codes2 = c.clone();
        // a second description for E1 (different pk)
        codes2
            .update(&Value::from("E2"), row!["E2", "no power"])
            .unwrap();
        let dup = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("code", DataType::Text)
            .col("description", DataType::Text)
            .build()
            .unwrap();
        let mut d = Table::new("descs", dup);
        d.insert(row![1i64, "E1", "first"]).unwrap();
        d.insert(row![2i64, "E1", "second"]).unwrap();
        let rows = Join::inner("code", "code").run(&p, &d).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn filter_left_applies_before_join() {
        let (b, c) = tables();
        let rows = Join::inner("error_code", "code")
            .filter_left(Cond::eq(&b, "part_id", "P-01").unwrap())
            .run(&b, &c)
            .unwrap();
        assert_eq!(rows.len(), 2);
        let rows = Join::inner("error_code", "code")
            .filter_left(Cond::eq(&b, "part_id", "P-02").unwrap())
            .run(&b, &c)
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn unknown_columns_error() {
        let (b, c) = tables();
        assert!(Join::inner("ghost", "code").run(&b, &c).is_err());
        assert!(Join::inner("error_code", "ghost").run(&b, &c).is_err());
    }

    #[test]
    fn joined_arity_is_sum_of_schemas() {
        let (b, c) = tables();
        let rows = Join::inner("error_code", "code").run(&b, &c).unwrap();
        assert_eq!(rows[0].arity(), b.schema().arity() + c.schema().arity());
    }
}
