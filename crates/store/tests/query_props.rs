//! Property tests: the query planner's indexed access paths must return
//! exactly what a naive full-scan filter returns, and aggregation must match
//! a hand-rolled model.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

use qatk_store::prelude::*;
use qatk_store::row;

/// (id, part bucket 0..5, score, nullable note)
type Spec = Vec<(i64, u8, f64, Option<String>)>;

fn arb_rows() -> impl Strategy<Value = Spec> {
    vec(
        (
            any::<i64>(),
            0u8..5,
            -100.0f64..100.0,
            proptest::option::of("[a-z]{1,8}"), // non-empty: CSV maps "" in a nullable column to NULL
        ),
        0..60,
    )
}

fn build_tables(spec: &Spec) -> Option<(Table, Table)> {
    let schema = || {
        SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("part", DataType::Text)
            .col("score", DataType::Float)
            .col_null("note", DataType::Text)
            .build()
            .unwrap()
    };
    let mut plain = Table::new("plain", schema());
    let mut indexed = Table::new("indexed", schema());
    for (id, part, score, note) in spec {
        let r = row![
            *id,
            format!("P-{part}"),
            *score,
            note.clone().map(Value::Text).unwrap_or(Value::Null)
        ];
        // duplicate ids: skip the spec entirely (pk conflicts are a
        // different concern, tested elsewhere)
        if plain.insert(r.clone()).is_err() {
            return None;
        }
        indexed.insert(r).unwrap();
    }
    indexed
        .create_index("by_part", "part", IndexKind::Hash)
        .unwrap();
    indexed
        .create_index("by_score", "score", IndexKind::Ordered)
        .unwrap();
    Some((plain, indexed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_equality_equals_full_scan(spec in arb_rows(), bucket in 0u8..5) {
        let Some((plain, indexed)) = build_tables(&spec) else { return Ok(()); };
        let part = format!("P-{bucket}");
        let q_plain = Query::new().filter(Cond::eq(&plain, "part", part.as_str()).unwrap());
        let q_indexed = Query::new().filter(Cond::eq(&indexed, "part", part.as_str()).unwrap());
        let (mut a, path_a) = q_plain.run_explained(&plain).unwrap();
        let (mut b, path_b) = q_indexed.run_explained(&indexed).unwrap();
        prop_assert_eq!(path_a, AccessPath::FullScan);
        prop_assert_eq!(path_b, AccessPath::PointLookup);
        let key = |r: &Row| r.get(0).and_then(Value::as_int).unwrap();
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn range_scan_equals_full_scan(spec in arb_rows(), lo in -100.0f64..100.0, width in 0.0f64..100.0) {
        let Some((plain, indexed)) = build_tables(&spec) else { return Ok(()); };
        let hi = lo + width;
        let q_plain = Query::new().filter(Cond::between(&plain, "score", lo, hi).unwrap());
        let q_indexed = Query::new().filter(Cond::between(&indexed, "score", lo, hi).unwrap());
        let (mut a, _) = q_plain.run_explained(&plain).unwrap();
        let (mut b, path_b) = q_indexed.run_explained(&indexed).unwrap();
        prop_assert_eq!(path_b, AccessPath::RangeScan);
        let key = |r: &Row| r.get(0).and_then(Value::as_int).unwrap();
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn order_by_limit_is_a_true_top_k(spec in arb_rows(), k in 0usize..20) {
        let Some((plain, _)) = build_tables(&spec) else { return Ok(()); };
        let rows = Query::new()
            .order_by("score", SortOrder::Desc)
            .limit(k)
            .run(&plain)
            .unwrap();
        prop_assert!(rows.len() <= k);
        // descending and truly maximal
        for w in rows.windows(2) {
            prop_assert!(
                w[0].get(2).unwrap() >= w[1].get(2).unwrap()
            );
        }
        if rows.len() == k && k > 0 {
            let cutoff = rows.last().unwrap().get(2).unwrap().clone();
            let better = plain
                .scan()
                .filter(|r| r.get(2).unwrap() > &cutoff)
                .count();
            prop_assert!(better < k);
        }
    }

    #[test]
    fn group_count_matches_model(spec in arb_rows()) {
        let Some((plain, _)) = build_tables(&spec) else { return Ok(()); };
        let groups = GroupBy::count("part").run(&plain).unwrap();
        let mut model: HashMap<String, i64> = HashMap::new();
        for r in plain.scan() {
            *model
                .entry(r.get(1).and_then(Value::as_text).unwrap().to_owned())
                .or_insert(0) += 1;
        }
        prop_assert_eq!(groups.len(), model.len());
        for g in groups {
            let key = g.key.as_text().unwrap();
            prop_assert_eq!(g.value.as_int().unwrap(), model[key]);
        }
    }

    #[test]
    fn csv_roundtrip_any_table(spec in arb_rows()) {
        let Some((plain, _)) = build_tables(&spec) else { return Ok(()); };
        let csv = qatk_store::csv::export_table(&plain);
        let schema = plain.schema().clone();
        let back = qatk_store::csv::import_table("plain", schema, &csv).unwrap();
        prop_assert_eq!(back.len(), plain.len());
        for r in plain.scan() {
            let pk = r.get(0).unwrap();
            let got = back.get(pk).unwrap();
            // floats go through decimal text; compare exactly (Rust's float
            // formatting round-trips f64)
            prop_assert_eq!(got, r);
        }
    }

    #[test]
    fn snapshot_roundtrip_any_database(spec in arb_rows()) {
        let Some((_, indexed)) = build_tables(&spec) else { return Ok(()); };
        let mut db = Database::new();
        let n = indexed.len();
        db.create_table("x", indexed.schema().clone()).unwrap();
        for r in indexed.scan() {
            db.insert("x", r.clone()).unwrap();
        }
        let back = Database::from_bytes(&db.to_bytes()).unwrap();
        prop_assert_eq!(back.table("x").unwrap().len(), n);
    }
}
