//! Property tests over the corpus generator: every seed must produce a
//! structurally sound corpus — the invariants below are what the evaluation
//! pipeline relies on without re-checking.

use proptest::prelude::*;
use std::collections::HashSet;

use qatk_corpus::prelude::*;

fn small_corpus(seed: u64) -> Corpus {
    Corpus::generate(CorpusConfig {
        seed,
        n_bundles: 400,
        n_article_codes: 90,
        pool_scale: 0.06,
        ..CorpusConfig::default()
    })
}

proptest! {
    // corpus generation is the expensive part; keep the case count modest
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn corpus_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let c = small_corpus(seed);

        // every bundle references a known part, article code and error code
        for b in &c.bundles {
            let part = c.world.part(&b.part_id);
            prop_assert!(part.is_some(), "unknown part {}", b.part_id);
            prop_assert!(part.unwrap().article_codes.contains(&b.article_code));
            let code = b.error_code.as_deref().expect("generated bundles are coded");
            let def = c.world.code(code);
            prop_assert!(def.is_some(), "unknown code {code}");
            prop_assert_eq!(&def.unwrap().part_id, &b.part_id);
            // mandatory texts are present
            prop_assert!(!b.mechanic_report.trim().is_empty());
            prop_assert!(!b.supplier_report.trim().is_empty());
            prop_assert!(!b.part_description.trim().is_empty());
        }

        // reference numbers unique
        let refs: HashSet<&str> = c.bundles.iter().map(|b| b.reference_number.as_str()).collect();
        prop_assert_eq!(refs.len(), c.bundles.len());

        // every error code of the world appears at least once
        let used: HashSet<&str> = c
            .bundles
            .iter()
            .filter_map(|b| b.error_code.as_deref())
            .collect();
        prop_assert_eq!(used.len(), c.world.codes.len());

        // 31 part IDs, as in the paper, regardless of scale
        let parts: HashSet<&str> = c.bundles.iter().map(|b| b.part_id.as_str()).collect();
        prop_assert_eq!(parts.len(), 31);
    }

    #[test]
    fn stats_are_internally_consistent(seed in any::<u64>()) {
        let c = small_corpus(seed);
        let s = CorpusStats::compute(&c);
        prop_assert_eq!(s.n_bundles, c.bundles.len());
        prop_assert_eq!(s.usable_classes + s.singleton_codes, s.n_error_codes);
        prop_assert_eq!(s.usable_bundles + s.singleton_codes, s.n_bundles);
        prop_assert_eq!(s.usable_bundles, c.evaluable_bundles().len());
        prop_assert!(s.max_codes_per_part <= s.n_error_codes);
        prop_assert!(s.parts_with_over_10_codes <= s.n_part_ids);
        prop_assert!(s.avg_words_per_bundle > 0.0);
    }

    #[test]
    fn complaints_reference_world_codes(seed in any::<u64>()) {
        let c = small_corpus(seed);
        let complaints = generate_complaints(
            &c,
            &NhtsaConfig {
                seed,
                n_complaints: 50,
                ..NhtsaConfig::default()
            },
        );
        prop_assert_eq!(complaints.len(), 50);
        for cp in &complaints {
            let def = c.world.code(&cp.latent_error_code);
            prop_assert!(def.is_some());
            prop_assert_eq!(&def.unwrap().part_id, &cp.latent_part_id);
            prop_assert!(!cp.text.is_empty());
            prop_assert_eq!(&cp.text, &cp.text.to_uppercase());
        }
    }

    #[test]
    fn messify_preserves_word_count_bounds(
        text in "[a-zA-Z ]{10,120}",
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let messy = messify(&text, &MessyConfig::mechanic(), &mut rng);
        // the channel corrupts characters and abbreviates words but never
        // adds or removes whole words
        prop_assert_eq!(
            messy.split(' ').count(),
            text.split(' ').count()
        );
    }
}
