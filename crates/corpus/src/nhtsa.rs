//! Synthetic NHTSA ODI consumer complaints.
//!
//! §5.4 extends the use case by classifying "problem reports from the
//! US-American complaints database maintained by the Office of Defects
//! (ODI/NHTSA)" with the internal knowledge base, to compare error-code
//! distributions across markets. The real database is public but enormous
//! and ever-changing; this module generates complaints with its essential
//! properties: English-only consumer language (a *different text type* from
//! workshop reports), vehicle make/model/year fields, a component category,
//! and a latent fault drawn from a *different* error distribution than the
//! internal corpus — the difference the Fig. 14 comparison is built to show.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qatk_taxonomy::concept::Lang;

use crate::faults::{surface, FaultWorld};
use crate::generator::Corpus;
use crate::zipf::Zipf;

/// One consumer complaint (the ODI flat-file fields QATK uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Complaint {
    /// ODI record id.
    pub odi_id: u64,
    pub make: String,
    pub model: String,
    pub year: u16,
    /// Coarse NHTSA component category ("ELECTRICAL SYSTEM", …).
    pub component_category: String,
    /// Free-text consumer description.
    pub text: String,
    /// The latent fault's part ID (ground truth for evaluation only; the
    /// real database has no such field).
    pub latent_part_id: String,
    /// The latent error code (ground truth for evaluation only).
    pub latent_error_code: String,
}

/// Configuration of the complaint generator.
#[derive(Debug, Clone, Copy)]
pub struct NhtsaConfig {
    pub seed: u64,
    pub n_complaints: usize,
    /// Zipf exponent for the *complaint-side* code skew. Differs from the
    /// internal corpus so the two distributions visibly diverge (Fig. 14).
    pub zipf_s: f64,
    /// Rotation applied to each part's code ranking, so a different code
    /// leads the complaint distribution than leads the internal one.
    pub rank_rotation: usize,
}

impl Default for NhtsaConfig {
    fn default() -> Self {
        NhtsaConfig {
            seed: 0x0D1_2014,
            n_complaints: 2_000,
            zipf_s: 1.2,
            rank_rotation: 2,
        }
    }
}

const MAKES: &[(&str, &[&str])] = &[
    ("STARWAGEN", &["S300", "S500", "CROSSER"]),
    ("AUTOBAHN MOTORS", &["A4X", "A6X"]),
    ("LIBERTY AUTO", &["FREEDOM", "PATRIOT LX"]),
    ("KOMET", &["K2", "K5 TOURING"]),
];

const OPENERS: &[&str] = &[
    "while driving at highway speed",
    "when starting the vehicle in the morning",
    "after parking the car overnight",
    "during a long road trip",
    "while idling at a traffic light",
    "shortly after the warranty expired",
];

const CONSUMER_COMPLAINTS: &[&str] = &[
    "the contact stated that the failure occurred without warning",
    "the dealer was unable to duplicate the problem",
    "the manufacturer was notified and offered no assistance",
    "the vehicle was taken to the dealer who could not find the cause",
    "the failure recurred multiple times",
    "the consumer is concerned about safety",
];

/// Map a vehicle system name to the NHTSA component-category vocabulary.
pub fn category_for(system: &str) -> &'static str {
    match system {
        "electrical" => "ELECTRICAL SYSTEM",
        "infotainment" => "EQUIPMENT:ELECTRICAL",
        "climate" => "VISIBILITY:DEFROSTER/DEFOGGER",
        "engine" => "ENGINE AND ENGINE COOLING",
        "brakes" => "SERVICE BRAKES",
        _ => "UNKNOWN OR OTHER",
    }
}

/// Generate complaints whose latent faults come from the same fault world as
/// the internal corpus (shared suppliers!) but with a different skew.
pub fn generate_complaints(corpus: &Corpus, config: &NhtsaConfig) -> Vec<Complaint> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let world: &FaultWorld = &corpus.world;
    let tax = &corpus.taxonomy.taxonomy;

    // per-part samplers with rotated rank order
    let parts: Vec<&String> = world.parts.iter().map(|p| &p.part_id).collect();
    let samplers: Vec<Zipf> = parts
        .iter()
        .map(|p| Zipf::new(world.codes_by_part[*p].len(), config.zipf_s))
        .collect();
    let part_weights: Vec<usize> = parts
        .iter()
        .map(|p| world.codes_by_part[*p].len())
        .collect();
    let total_weight: usize = part_weights.iter().sum();

    let mut out = Vec::with_capacity(config.n_complaints);
    for i in 0..config.n_complaints {
        // pick part, then a rank rotated against the internal ranking
        let mut w = rng.random_range(0..total_weight);
        let mut part_idx = 0usize;
        for (k, &pw) in part_weights.iter().enumerate() {
            if w < pw {
                part_idx = k;
                break;
            }
            w -= pw;
        }
        let pool = &world.codes_by_part[parts[part_idx]];
        let rank = (samplers[part_idx].sample(&mut rng) + config.rank_rotation) % pool.len();
        let code = &world.codes[pool[rank]];
        let part = world.part(&code.part_id).expect("part exists");

        let (make, models) = MAKES[rng.random_range(0..MAKES.len())];
        let model = models[rng.random_range(0..models.len())];
        let year = rng.random_range(2005..=2015);

        // consumer voice: English, verbose, mentions component and primary
        // symptom in consumer terms, never OEM jargon
        let component = surface(tax, code.component, Lang::En, &mut rng);
        let symptom = surface(tax, code.symptoms[0], Lang::En, &mut rng);
        let opener = OPENERS[rng.random_range(0..OPENERS.len())];
        let filler_a = CONSUMER_COMPLAINTS[rng.random_range(0..CONSUMER_COMPLAINTS.len())];
        let filler_b = CONSUMER_COMPLAINTS[rng.random_range(0..CONSUMER_COMPLAINTS.len())];
        let text =
            format!("{opener}, the {component} exhibited {symptom}. {filler_a}. {filler_b}.",)
                .to_uppercase(); // the real ODI flat files are all-caps

        out.push(Complaint {
            odi_id: 10_000_000 + i as u64,
            make: make.to_owned(),
            model: model.to_owned(),
            year,
            component_category: category_for(&part.system).to_owned(),
            text,
            latent_part_id: code.part_id.clone(),
            latent_error_code: code.code.clone(),
        });
    }
    out
}

/// Table schema for complaints in the relational store / CSV interchange
/// (the real ODI database ships as flat files).
pub fn complaint_schema() -> qatk_store::Schema {
    use qatk_store::prelude::*;
    SchemaBuilder::new()
        .pk("odi_id", DataType::Int)
        .col("make", DataType::Text)
        .col("model", DataType::Text)
        .col("year", DataType::Int)
        .col("component_category", DataType::Text)
        .col("text", DataType::Text)
        .col("latent_part_id", DataType::Text)
        .col("latent_error_code", DataType::Text)
        .build()
        .expect("static schema is valid")
}

/// Export complaints as a CSV flat file (header + one record each).
pub fn complaints_to_csv(complaints: &[Complaint]) -> String {
    use qatk_store::prelude::*;
    let mut table = Table::new("complaints", complaint_schema());
    for c in complaints {
        table
            .insert(row![
                c.odi_id as i64,
                c.make.clone(),
                c.model.clone(),
                c.year as i64,
                c.component_category.clone(),
                c.text.clone(),
                c.latent_part_id.clone(),
                c.latent_error_code.clone()
            ])
            .expect("complaint ids are unique");
    }
    qatk_store::csv::export_table(&table)
}

/// Import complaints from the CSV flat-file format.
pub fn complaints_from_csv(csv: &str) -> Result<Vec<Complaint>, qatk_store::StoreError> {
    use qatk_store::prelude::Value;
    let table = qatk_store::csv::import_table("complaints", complaint_schema(), csv)?;
    let mut out: Vec<Complaint> = table
        .scan()
        .map(|r| {
            let text = |i: usize| {
                r.get(i)
                    .and_then(Value::as_text)
                    .unwrap_or_default()
                    .to_owned()
            };
            Complaint {
                odi_id: r.get(0).and_then(Value::as_int).unwrap_or(0) as u64,
                make: text(1),
                model: text(2),
                year: r.get(3).and_then(Value::as_int).unwrap_or(0) as u16,
                component_category: text(4),
                text: text(5),
                latent_part_id: text(6),
                latent_error_code: text(7),
            }
        })
        .collect();
    out.sort_by_key(|c| c.odi_id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Corpus, CorpusConfig};
    use std::collections::HashMap;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(11))
    }

    #[test]
    fn generates_requested_count() {
        let c = corpus();
        let complaints = generate_complaints(
            &c,
            &NhtsaConfig {
                n_complaints: 300,
                ..NhtsaConfig::default()
            },
        );
        assert_eq!(complaints.len(), 300);
        for cp in &complaints {
            assert!(c.world.code(&cp.latent_error_code).is_some());
            assert!(!cp.text.is_empty());
            assert!((2005..=2015).contains(&cp.year));
        }
    }

    #[test]
    fn text_is_uppercase_english_consumer_style() {
        let c = corpus();
        let complaints = generate_complaints(&c, &NhtsaConfig::default());
        let t = &complaints[0].text;
        assert_eq!(t, &t.to_uppercase());
        assert!(t.contains("THE"));
        // no OEM jargon tokens appear as words (consumers don't use
        // internal spec references); word-level check avoids accidental
        // substring collisions with English words
        let words: std::collections::HashSet<&str> = t
            .split(|c: char| !c.is_alphanumeric() && c != '-')
            .collect();
        for code in &c.world.codes {
            for v in &code.vocab {
                assert!(
                    !words.contains(v.to_uppercase().as_str()),
                    "jargon {v} leaked"
                );
            }
        }
    }

    #[test]
    fn distribution_differs_from_internal() {
        let c = corpus();
        let complaints = generate_complaints(
            &c,
            &NhtsaConfig {
                n_complaints: 2_000,
                ..NhtsaConfig::default()
            },
        );
        // top internal code vs top complaint code should differ for the
        // largest part pool (rank rotation guarantees a shifted head)
        let big_part = &c.world.parts[0].part_id;
        let internal_top = {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for b in &c.bundles {
                if &b.part_id == big_part {
                    *counts.entry(b.error_code.as_deref().unwrap()).or_insert(0) += 1;
                }
            }
            counts
                .into_iter()
                .max_by_key(|&(_, n)| n)
                .unwrap()
                .0
                .to_owned()
        };
        let complaint_top = {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for cp in &complaints {
                if &cp.latent_part_id == big_part {
                    *counts.entry(&cp.latent_error_code).or_insert(0) += 1;
                }
            }
            counts
                .into_iter()
                .max_by_key(|&(_, n)| n)
                .unwrap()
                .0
                .to_owned()
        };
        assert_ne!(internal_top, complaint_top);
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let a = generate_complaints(&c, &NhtsaConfig::default());
        let b = generate_complaints(&c, &NhtsaConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn csv_flat_file_roundtrip() {
        let c = corpus();
        let complaints = generate_complaints(
            &c,
            &NhtsaConfig {
                n_complaints: 60,
                ..NhtsaConfig::default()
            },
        );
        let csv = complaints_to_csv(&complaints);
        assert!(csv.starts_with("odi_id,make,model,year,"));
        let back = complaints_from_csv(&csv).unwrap();
        assert_eq!(back, complaints);
    }

    #[test]
    fn csv_import_rejects_garbage() {
        assert!(complaints_from_csv(
            "not,a,complaint,file
"
        )
        .is_err());
        assert!(complaints_from_csv("").is_err());
    }

    #[test]
    fn categories_map_known_systems() {
        assert_eq!(category_for("electrical"), "ELECTRICAL SYSTEM");
        assert_eq!(category_for("bogus"), "UNKNOWN OR OTHER");
    }
}
