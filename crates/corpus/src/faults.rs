//! The latent fault world behind the synthetic corpus.
//!
//! Every error code of the paper's data encodes a recurring fault of one
//! part type. We model that explicitly: a part ID groups component concepts
//! of one vehicle system; an error code fixes a component, one or more
//! symptoms, and a small set of code-specific technical vocabulary (the
//! OEM-internal jargon, spec references and measurement shorthand that only
//! ever appears in reports about *this* fault). The vocabulary is what gives
//! bag-of-words its discriminative edge over bag-of-concepts in Experiment 1
//! — concepts collapse codes that share component and symptom, words do not.
//!
//! Pool sizes are hand-shaped to the paper's §3.2 statistics: 31 part IDs,
//! 1 271 error codes in total, a maximum of 146 codes for one part ID, and
//! exactly 25 of the 31 part IDs holding more than 10 codes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use qatk_taxonomy::concept::{ConceptId, Lang};
use qatk_taxonomy::synthetic::SyntheticTaxonomy;
use qatk_taxonomy::taxonomy::Taxonomy;

/// Error-code pool sizes per part ID. 31 entries summing to 1 271; the first
/// 25 exceed 10 (paper: "25 of the 31 part IDs have instances of over 10
/// error codes"), the maximum is 146 ("the largest number of distinct error
/// codes for one part id in our data set is 146").
pub const POOL_SIZES: [usize; 31] = [
    146, 118, 100, 90, 84, 76, 70, 64, 58, 53, 48, 44, 40, 37, 34, 31, 27, 24, 21, 19, 17, 15, 14,
    12, 11, // 25 part IDs with > 10 codes
    6, 4, 3, 2, 2, 1, // 6 part IDs with <= 10 codes
];

/// One part type (the paper's part ID granularity; 31 distinct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartIdDef {
    pub part_id: String,
    /// The vehicle system ("component class") this part type belongs to.
    pub system: String,
    /// Component leaf concepts associated with this part type.
    pub components: Vec<ConceptId>,
    pub description_en: String,
    pub description_de: String,
    /// Article codes (finer granularity; 831 distinct across all parts).
    pub article_codes: Vec<String>,
    /// The symptom pocket: the small set of symptoms that plausibly occur
    /// on this part type. Codes draw their symptoms from here, which makes
    /// codes of one part *collide* on concept features — the reason the
    /// paper's bag-of-concepts model trails bag-of-words at small k.
    pub symptom_pocket: Vec<ConceptId>,
    /// The part's supplier writes predominantly in this language (each part
    /// type has one supplier — Fig. 2). Language consistency within a code's
    /// reports is what lets bag-of-words exploit recurring wording.
    pub supplier_lang: Lang,
}

/// One error code (the classification target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorCodeDef {
    pub code: String,
    pub part_id: String,
    /// The component the fault manifests on.
    pub component: ConceptId,
    /// Symptoms, primary first (1–3).
    pub symptoms: Vec<ConceptId>,
    /// Code-specific technical vocabulary (2–4 jargon tokens).
    pub vocab: Vec<String>,
    /// True for codes whose characteristic symptom wording is *not* covered
    /// by the taxonomy (the paper's §5.2.2 diagnosis: "the concepts which
    /// are currently being recognized ... do not represent ultimately
    /// accurate features" because the legacy resource "has not yet been
    /// adapted to the current data source"). Reports about these codes
    /// describe the fault in wording the concept annotator cannot map.
    pub off_taxonomy: bool,
    /// Standardized error-code description (training-only text source).
    pub description: String,
}

/// The complete fault world.
#[derive(Debug, Clone)]
pub struct FaultWorld {
    pub parts: Vec<PartIdDef>,
    pub codes: Vec<ErrorCodeDef>,
    /// part_id -> indexes into `codes`, in popularity-rank order (index 0 is
    /// the most frequent code of that part — the Zipf head).
    pub codes_by_part: HashMap<String, Vec<usize>>,
}

/// The three "larger component classes" the paper's extract covers (§3.2).
const COMPONENT_CLASSES: [&str; 3] = ["infotainment", "electrical", "climate"];

/// Consonant-vowel syllables for jargon-token generation.
const SYLLABLES: [&str; 24] = [
    "ka", "ro", "li", "ve", "ta", "mu", "so", "ne", "di", "pa", "ze", "go", "fi", "ha", "ju", "be",
    "wa", "ol", "er", "an", "st", "sch", "tr", "kl",
];

impl FaultWorld {
    /// Build the fault world over a synthetic taxonomy.
    ///
    /// `n_article_codes` article codes are distributed over part IDs roughly
    /// proportionally to their code-pool sizes (paper: 831).
    pub fn generate(syn: &SyntheticTaxonomy, n_article_codes: usize, rng: &mut StdRng) -> Self {
        Self::generate_scaled(syn, n_article_codes, 1.0, rng)
    }

    /// Like [`FaultWorld::generate`] but with every code pool scaled by
    /// `pool_scale` (minimum 1 code per part). Scaled-down worlds keep the
    /// paper's *shape* — 31 part IDs, skewed pools — at test-friendly sizes.
    pub fn generate_scaled(
        syn: &SyntheticTaxonomy,
        n_article_codes: usize,
        pool_scale: f64,
        rng: &mut StdRng,
    ) -> Self {
        let pool_sizes: Vec<usize> = POOL_SIZES
            .iter()
            .map(|&s| ((s as f64 * pool_scale).round() as usize).max(1))
            .collect();
        let tax = &syn.taxonomy;
        // Components of the three chosen classes, split across part IDs.
        let class_components: Vec<(&str, &[ConceptId])> = COMPONENT_CLASSES
            .iter()
            .map(|name| {
                let comps = syn
                    .systems
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, c)| c.as_slice())
                    .unwrap_or_else(|| panic!("system `{name}` missing from taxonomy"));
                (*name, comps)
            })
            .collect();

        let total_pool: usize = pool_sizes.iter().sum();
        let mut parts = Vec::with_capacity(pool_sizes.len());
        let mut codes: Vec<ErrorCodeDef> = Vec::with_capacity(total_pool);
        let mut codes_by_part: HashMap<String, Vec<usize>> = HashMap::new();
        let mut used_vocab: HashMap<String, usize> = HashMap::new();
        let mut article_counter = 0usize;

        for (i, &pool_size) in pool_sizes.iter().enumerate() {
            let (system, comps) = class_components[i % class_components.len()];
            // each part type covers a contiguous slice of its class components
            let per_part = comps.len() / (pool_sizes.len() / class_components.len() + 1);
            let start = (i / class_components.len()) * per_part % comps.len().max(1);
            let width = per_part.clamp(2, 4).min(comps.len());
            let mut components: Vec<ConceptId> = (0..width)
                .map(|k| comps[(start + k) % comps.len()])
                .collect();
            components.dedup();

            let part_id = format!("P-{:02}", i + 1);
            let lead = surface(tax, components[0], Lang::En, rng);
            let description_en = format!("{} assembly type {}", title_case(&lead), i + 1);
            let lead_de = surface(tax, components[0], Lang::De, rng);
            let description_de = format!("{} Baugruppe Typ {}", title_case(&lead_de), i + 1);

            // article codes proportional to pool size (at least one each)
            let n_articles =
                ((n_article_codes.saturating_sub(pool_sizes.len())) * pool_size / total_pool) + 1;
            let article_codes: Vec<String> = (0..n_articles)
                .map(|_| {
                    article_counter += 1;
                    format!("A-{article_counter:05}")
                })
                .collect();

            // the part type's symptom pocket (small, so codes collide on it)
            let pocket_size = rng.random_range(3..=5usize).min(syn.symptoms.len());
            let mut symptom_pocket: Vec<ConceptId> = Vec::with_capacity(pocket_size);
            while symptom_pocket.len() < pocket_size {
                let s = syn.symptoms[rng.random_range(0..syn.symptoms.len())];
                if !symptom_pocket.contains(&s) {
                    symptom_pocket.push(s);
                }
            }

            // error codes of this part. Code *names* are shuffled against
            // popularity rank: real error-code numbering predates usage
            // statistics, so lexicographic order must not encode frequency
            // (the unsorted candidate-set baseline of §5.1 depends on this).
            let mut name_nums: Vec<usize> = (1..=pool_size).collect();
            for k in (1..name_nums.len()).rev() {
                let j = rng.random_range(0..=k);
                name_nums.swap(k, j);
            }
            let mut idxs = Vec::with_capacity(pool_size);
            for &name_num in name_nums.iter().take(pool_size) {
                let code = format!("E{:02}{:03}", i + 1, name_num);
                let component = components[rng.random_range(0..components.len())];
                // symptom count skewed toward 1: ties inside a
                // (component, symptom) cell are the norm, not the exception
                let r = rng.random_range(0..100u32);
                let n_sym = (if r < 50 {
                    1
                } else if r < 85 {
                    2
                } else {
                    3
                })
                .min(pocket_size.max(1));
                let mut symptoms = Vec::with_capacity(n_sym);
                while symptoms.len() < n_sym {
                    let s = symptom_pocket[rng.random_range(0..pocket_size)];
                    if !symptoms.contains(&s) {
                        symptoms.push(s);
                    }
                }
                let n_vocab = rng.random_range(2..=4usize);
                let vocab: Vec<String> = (0..n_vocab)
                    .map(|_| jargon_token(rng, &mut used_vocab))
                    .collect();
                let sym_surface = surface(tax, symptoms[0], Lang::En, rng);
                let comp_surface = surface(tax, component, Lang::En, rng);
                let description = format!(
                    "{} at {} per spec {}",
                    title_case(&sym_surface),
                    comp_surface,
                    vocab[0]
                );
                idxs.push(codes.len());
                let off_taxonomy = rng.random_bool(0.18);
                codes.push(ErrorCodeDef {
                    code,
                    part_id: part_id.clone(),
                    component,
                    symptoms,
                    vocab,
                    off_taxonomy,
                    description,
                });
            }
            codes_by_part.insert(part_id.clone(), idxs);
            parts.push(PartIdDef {
                part_id,
                system: system.to_owned(),
                components,
                description_en,
                description_de,
                article_codes,
                symptom_pocket,
                supplier_lang: if rng.random_bool(0.55) {
                    Lang::De
                } else {
                    Lang::En
                },
            });
        }

        FaultWorld {
            parts,
            codes,
            codes_by_part,
        }
    }

    /// Look up a part definition.
    pub fn part(&self, part_id: &str) -> Option<&PartIdDef> {
        self.parts.iter().find(|p| p.part_id == part_id)
    }

    /// Look up an error code definition.
    pub fn code(&self, code: &str) -> Option<&ErrorCodeDef> {
        self.codes.iter().find(|c| c.code == code)
    }

    /// Total number of article codes.
    pub fn article_code_count(&self) -> usize {
        self.parts.iter().map(|p| p.article_codes.len()).sum()
    }
}

/// Pick a random surface term of a concept in the given language, falling
/// back to any language (code switching is the norm in these reports).
pub fn surface(tax: &Taxonomy, id: ConceptId, lang: Lang, rng: &mut StdRng) -> String {
    let c = tax.get(id).expect("concept exists");
    let in_lang: Vec<&str> = c.terms_in(lang).map(|t| t.text.as_str()).collect();
    let pool: Vec<&str> = if in_lang.is_empty() {
        c.terms.iter().map(|t| t.text.as_str()).collect()
    } else {
        in_lang
    };
    if pool.is_empty() {
        return c.name.to_lowercase();
    }
    pool[rng.random_range(0..pool.len())].to_owned()
}

/// Generate a unique jargon token: syllable compound, sometimes with a
/// numeric spec suffix ("schmorka-47", "trolibe", "k4712"-style).
fn jargon_token(rng: &mut StdRng, used: &mut HashMap<String, usize>) -> String {
    let n_syl = rng.random_range(2..=3usize);
    let mut w = String::new();
    for _ in 0..n_syl {
        w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    if rng.random_bool(0.4) {
        w = format!("{w}-{}", rng.random_range(10..99));
    }
    // enforce global uniqueness: collisions get a distinct numeric suffix
    let count = used.entry(w.clone()).or_insert(0);
    *count += 1;
    if *count > 1 {
        w = format!("{w}{}", *count);
        used.insert(w.clone(), 1);
    }
    w
}

pub(crate) fn title_case(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn world() -> FaultWorld {
        let syn = SyntheticTaxonomy::generate(1);
        let mut rng = StdRng::seed_from_u64(2);
        FaultWorld::generate(&syn, 831, &mut rng)
    }

    #[test]
    fn pool_sizes_match_paper_statistics() {
        assert_eq!(POOL_SIZES.len(), 31);
        assert_eq!(POOL_SIZES.iter().sum::<usize>(), 1271);
        assert_eq!(*POOL_SIZES.iter().max().unwrap(), 146);
        assert_eq!(POOL_SIZES.iter().filter(|&&s| s > 10).count(), 25);
    }

    #[test]
    fn world_shape() {
        let w = world();
        assert_eq!(w.parts.len(), 31);
        assert_eq!(w.codes.len(), 1271);
        assert_eq!(w.codes_by_part.len(), 31);
        for p in &w.parts {
            let pool = &w.codes_by_part[&p.part_id];
            assert!(!pool.is_empty());
            for &idx in pool {
                assert_eq!(w.codes[idx].part_id, p.part_id);
            }
        }
    }

    #[test]
    fn article_codes_sum_and_unique() {
        let w = world();
        let total = w.article_code_count();
        assert!(
            (790..=870).contains(&total),
            "article codes = {total}, want ≈ 831"
        );
        let mut all: Vec<&String> = w.parts.iter().flat_map(|p| &p.article_codes).collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn error_codes_unique_and_well_formed() {
        let w = world();
        let mut codes: Vec<&String> = w.codes.iter().map(|c| &c.code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 1271);
        for c in &w.codes {
            assert!((1..=3).contains(&c.symptoms.len()));
            assert!((2..=4).contains(&c.vocab.len()));
            assert!(!c.description.is_empty());
        }
    }

    #[test]
    fn vocab_tokens_globally_unique() {
        let w = world();
        let mut vocab: Vec<&String> = w.codes.iter().flat_map(|c| &c.vocab).collect();
        let n = vocab.len();
        vocab.sort();
        vocab.dedup();
        assert_eq!(
            vocab.len(),
            n,
            "jargon tokens must not collide across codes"
        );
    }

    #[test]
    fn components_belong_to_part_system() {
        let w = world();
        let syn = SyntheticTaxonomy::generate(1);
        for p in &w.parts {
            let sys_comps = &syn.systems.iter().find(|(n, _)| *n == p.system).unwrap().1;
            for c in &p.components {
                assert!(sys_comps.contains(c));
            }
        }
    }

    #[test]
    fn lookups() {
        let w = world();
        assert!(w.part("P-01").is_some());
        assert!(w.part("P-99").is_none());
        let code = &w.codes[0].code;
        assert_eq!(&w.code(code).unwrap().code, code);
        assert!(w.code("E-bogus").is_none());
    }

    #[test]
    fn deterministic() {
        let syn = SyntheticTaxonomy::generate(1);
        let a = FaultWorld::generate(&syn, 831, &mut StdRng::seed_from_u64(5));
        let b = FaultWorld::generate(&syn, 831, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.codes, b.codes);
        assert_eq!(a.parts, b.parts);
    }

    #[test]
    fn title_case_works() {
        assert_eq!(title_case("radio unit"), "Radio unit");
        assert_eq!(title_case(""), "");
        assert_eq!(title_case("ölpumpe"), "Ölpumpe");
    }
}
