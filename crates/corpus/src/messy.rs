//! The messiness channel: what turns clean template text into the "messy
//! data" of the paper's title.
//!
//! §1.2 characterizes the reports: "non-standard, domain-specific language,
//! riddled with spelling errors, idiosyncratic and non-idiomatic expressions
//! and OEM-internal abbreviations". The fictional example in Fig. 3 shows the
//! flavour: "Kleint says taht radio turns on and off by itself. Electiral
//! smell, crackling sound." This module injects exactly those defect classes,
//! parameterized per report source (mechanic reports are far messier than
//! supplier reports, which drives Experiment 2).

use rand::Rng;

/// Knobs of the messiness channel.
#[derive(Debug, Clone, Copy)]
pub struct MessyConfig {
    /// Per-word probability of a typo (swap/drop/double/replace).
    pub typo_prob: f64,
    /// Per-word probability of replacing a known word with its OEM-internal
    /// abbreviation.
    pub abbrev_prob: f64,
    /// Per-word probability of random case damage (all-caps or lowercase).
    pub case_noise_prob: f64,
    /// Probability of dropping sentence-final punctuation.
    pub drop_punct_prob: f64,
}

impl MessyConfig {
    /// Mechanic reports: "poor in detail ... and often error-riddled" (§5.3.2).
    pub fn mechanic() -> Self {
        MessyConfig {
            typo_prob: 0.09,
            abbrev_prob: 0.10,
            case_noise_prob: 0.05,
            drop_punct_prob: 0.5,
        }
    }

    /// Supplier reports: professional but still informal shop language.
    pub fn supplier() -> Self {
        MessyConfig {
            typo_prob: 0.02,
            abbrev_prob: 0.06,
            case_noise_prob: 0.02,
            drop_punct_prob: 0.2,
        }
    }

    /// OEM-internal reports: terse but fairly clean.
    pub fn oem() -> Self {
        MessyConfig {
            typo_prob: 0.015,
            abbrev_prob: 0.08,
            case_noise_prob: 0.01,
            drop_punct_prob: 0.3,
        }
    }

    /// No corruption at all (descriptions, tests).
    pub fn clean() -> Self {
        MessyConfig {
            typo_prob: 0.0,
            abbrev_prob: 0.0,
            case_noise_prob: 0.0,
            drop_punct_prob: 0.0,
        }
    }
}

/// OEM-internal abbreviations: (full form, abbreviation). Mixed DE/EN, as in
/// real workshop language.
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("nicht", "n."),
    ("defekt", "def."),
    ("funktioniert", "funkt."),
    ("ausgetauscht", "ausgetau."),
    ("geprüft", "gepr."),
    ("customer", "cust."),
    ("replaced", "repl."),
    ("checked", "chk."),
    ("according", "acc."),
    ("ersetzt", "ers."),
    ("kontakt", "kont."),
    ("bauteil", "bt."),
    ("fahrzeug", "fzg."),
    ("vehicle", "veh."),
    ("intermittent", "intermit."),
    ("sporadisch", "spor."),
];

/// Apply the messiness channel to a whole text.
pub fn messify<R: Rng + ?Sized>(text: &str, config: &MessyConfig, rng: &mut R) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    let mut first = true;
    for word in text.split(' ') {
        if !first {
            out.push(' ');
        }
        first = false;
        out.push_str(&messify_word(word, config, rng));
    }
    if config.drop_punct_prob > 0.0
        && rng.random_bool(config.drop_punct_prob)
        && out.ends_with(['.', '!'])
    {
        out.pop();
    }
    out
}

fn messify_word<R: Rng + ?Sized>(word: &str, config: &MessyConfig, rng: &mut R) -> String {
    // abbreviation replacement first (word-level, case-insensitive match)
    if config.abbrev_prob > 0.0 && rng.random_bool(config.abbrev_prob) {
        let lower = word.to_lowercase();
        let bare = lower.trim_end_matches(['.', ',', '!']);
        if let Some((_, abbr)) = ABBREVIATIONS.iter().find(|(full, _)| *full == bare) {
            return (*abbr).to_owned();
        }
    }
    let mut w = word.to_owned();
    if config.typo_prob > 0.0 && rng.random_bool(config.typo_prob) {
        w = typo(&w, rng);
    }
    if config.case_noise_prob > 0.0 && rng.random_bool(config.case_noise_prob) {
        w = if rng.random_bool(0.5) {
            w.to_uppercase()
        } else {
            w.to_lowercase()
        };
    }
    w
}

/// Inject one character-level typo: adjacent swap, drop, double, or replace.
/// ASCII-safe: operates on char boundaries.
pub fn typo<R: Rng + ?Sized>(word: &str, rng: &mut R) -> String {
    let chars: Vec<char> = word.chars().collect();
    // only touch alphabetic cores of sensible length
    let alpha = chars.iter().filter(|c| c.is_alphabetic()).count();
    if alpha < 3 {
        return word.to_owned();
    }
    let mut out = chars.clone();
    match rng.random_range(0..4u8) {
        // swap two adjacent letters ("that" -> "taht")
        0 => {
            let i = rng.random_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
        // drop a letter ("electrical" -> "electical")
        1 => {
            let i = rng.random_range(0..out.len());
            out.remove(i);
        }
        // double a letter ("motor" -> "mottor")
        2 => {
            let i = rng.random_range(0..out.len());
            let c = out[i];
            out.insert(i, c);
        }
        // replace with a keyboard-ish neighbour (previous letter in the
        // alphabet, wrapping) — deterministic and language-agnostic
        _ => {
            let i = rng.random_range(0..out.len());
            let c = out[i];
            if c.is_ascii_alphabetic() {
                let base = if c.is_ascii_uppercase() { b'A' } else { b'a' };
                let shifted = (c as u8 - base + 25) % 26 + base;
                out[i] = shifted as char;
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_config_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = "Der Lüfter funktioniert nicht.";
        assert_eq!(messify(text, &MessyConfig::clean(), &mut rng), text);
    }

    #[test]
    fn typo_preserves_short_words() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(typo("an", &mut rng), "an");
        assert_eq!(typo("a1", &mut rng), "a1");
    }

    #[test]
    fn typo_changes_length_or_content() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut changed = 0;
        for _ in 0..100 {
            let t = typo("electrical", &mut rng);
            if t != "electrical" {
                changed += 1;
            }
        }
        // replace-variant can no-op on rare non-ascii, but nearly all runs change
        assert!(changed > 90, "only {changed} typos changed the word");
    }

    #[test]
    fn mechanic_config_corrupts_noticeably() {
        let mut rng = StdRng::seed_from_u64(99);
        let text = "customer says that the radio turns on and off by itself electrical smell and crackling sound from the speaker area reported twice";
        let mut diffs = 0;
        // the per-run change rate is ~91%; sample widely enough that the
        // 85% bound is far outside normal variation
        for _ in 0..500 {
            if messify(text, &MessyConfig::mechanic(), &mut rng) != text {
                diffs += 1;
            }
        }
        assert!(
            diffs > 425,
            "mechanic channel too clean: {diffs}/500 changed"
        );
    }

    #[test]
    fn abbreviations_apply() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MessyConfig {
            typo_prob: 0.0,
            abbrev_prob: 1.0,
            case_noise_prob: 0.0,
            drop_punct_prob: 0.0,
        };
        let out = messify("funktioniert nicht defekt", &cfg, &mut rng);
        assert_eq!(out, "funkt. n. def.");
        // unknown words pass through
        let out = messify("radio", &cfg, &mut rng);
        assert_eq!(out, "radio");
    }

    #[test]
    fn punctuation_drop() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = MessyConfig {
            typo_prob: 0.0,
            abbrev_prob: 0.0,
            case_noise_prob: 0.0,
            drop_punct_prob: 1.0,
        };
        assert_eq!(
            messify("Unit non-functional.", &cfg, &mut rng),
            "Unit non-functional"
        );
        assert_eq!(messify("no punct", &cfg, &mut rng), "no punct");
    }

    #[test]
    fn deterministic_for_seed() {
        let text = "the radio turns on and off by itself electrical smell";
        let a = messify(
            text,
            &MessyConfig::mechanic(),
            &mut StdRng::seed_from_u64(11),
        );
        let b = messify(
            text,
            &MessyConfig::mechanic(),
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn umlauts_survive_typo_channel() {
        // must not panic on non-ascii; content may change
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let _ = typo("Lüfter", &mut rng);
            let _ = typo("durchgeschmort", &mut rng);
        }
    }
}
