//! Relational persistence of corpora: "These data, including the text
//! reports, are stored across several tables in a relational database"
//! (paper §3.2). The loader materializes the paper's table layout in
//! `qatk-store` and reads bundles back for pipeline runs.

use qatk_store::prelude::*;

use crate::bundle::DataBundle;
use crate::generator::Corpus;

/// Table names used by the QATK schema.
pub mod tables {
    pub const BUNDLES: &str = "bundles";
    pub const PART_IDS: &str = "part_ids";
    pub const ERROR_CODES: &str = "error_codes";
}

/// Create the raw-data tables (idempotent: errors if they already exist).
pub fn create_schema(db: &mut Database) -> StoreResult<()> {
    let bundles = SchemaBuilder::new()
        .pk("reference_number", DataType::Text)
        .col("article_code", DataType::Text)
        .col("part_id", DataType::Text)
        .col_null("error_code", DataType::Text)
        .col_null("responsibility_code", DataType::Text)
        .col("mechanic_report", DataType::Text)
        .col_null("initial_report", DataType::Text)
        .col("supplier_report", DataType::Text)
        .col_null("final_report", DataType::Text)
        .col("part_description", DataType::Text)
        .col_null("error_description", DataType::Text)
        .build()?;
    db.create_table(tables::BUNDLES, bundles)?;
    db.table_mut(tables::BUNDLES)?
        .create_index("bundles_by_part", "part_id", IndexKind::Hash)?;
    db.table_mut(tables::BUNDLES)?.create_index(
        "bundles_by_code",
        "error_code",
        IndexKind::Hash,
    )?;

    let parts = SchemaBuilder::new()
        .pk("part_id", DataType::Text)
        .col("system", DataType::Text)
        .col("description_en", DataType::Text)
        .col("description_de", DataType::Text)
        .build()?;
    db.create_table(tables::PART_IDS, parts)?;

    let codes = SchemaBuilder::new()
        .pk("code", DataType::Text)
        .col("part_id", DataType::Text)
        .col("description", DataType::Text)
        .build()?;
    db.create_table(tables::ERROR_CODES, codes)?;
    db.table_mut(tables::ERROR_CODES)?
        .create_index("codes_by_part", "part_id", IndexKind::Hash)?;
    Ok(())
}

fn bundle_row(b: &DataBundle) -> Row {
    row![
        b.reference_number.clone(),
        b.article_code.clone(),
        b.part_id.clone(),
        b.error_code.clone(),
        b.responsibility_code.clone(),
        b.mechanic_report.clone(),
        b.initial_report.clone(),
        b.supplier_report.clone(),
        b.final_report.clone(),
        b.part_description.clone(),
        b.error_description.clone(),
    ]
}

fn opt_text(v: &Value) -> Option<String> {
    v.as_text().map(str::to_owned)
}

fn row_bundle(r: &Row) -> DataBundle {
    let text = |i: usize| {
        r.get(i)
            .and_then(Value::as_text)
            .unwrap_or_default()
            .to_owned()
    };
    DataBundle {
        reference_number: text(0),
        article_code: text(1),
        part_id: text(2),
        error_code: r.get(3).and_then(opt_text),
        responsibility_code: r.get(4).and_then(opt_text),
        mechanic_report: text(5),
        initial_report: r.get(6).and_then(opt_text),
        supplier_report: text(7),
        final_report: r.get(8).and_then(opt_text),
        part_description: text(9),
        error_description: r.get(10).and_then(opt_text),
    }
}

/// Persist an entire corpus (schema + rows) into a database.
pub fn save_corpus(corpus: &Corpus, db: &mut Database) -> StoreResult<()> {
    create_schema(db)?;
    for p in &corpus.world.parts {
        db.insert(
            tables::PART_IDS,
            row![
                p.part_id.clone(),
                p.system.clone(),
                p.description_en.clone(),
                p.description_de.clone(),
            ],
        )?;
    }
    for c in &corpus.world.codes {
        db.insert(
            tables::ERROR_CODES,
            row![c.code.clone(), c.part_id.clone(), c.description.clone()],
        )?;
    }
    for b in &corpus.bundles {
        db.insert(tables::BUNDLES, bundle_row(b))?;
    }
    Ok(())
}

/// Read all bundles back, in reference-number order.
pub fn load_bundles(db: &Database) -> StoreResult<Vec<DataBundle>> {
    let table = db.table(tables::BUNDLES)?;
    let rows = Query::new()
        .order_by("reference_number", SortOrder::Asc)
        .run(table)?;
    Ok(rows.iter().map(row_bundle).collect())
}

/// Read the bundles of one part ID (via the secondary index).
pub fn load_bundles_for_part(db: &Database, part_id: &str) -> StoreResult<Vec<DataBundle>> {
    let table = db.table(tables::BUNDLES)?;
    let rows = table.lookup("part_id", &Value::from(part_id))?;
    Ok(rows.into_iter().map(row_bundle).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(7))
    }

    #[test]
    fn save_and_load_roundtrip() {
        let c = corpus();
        let mut db = Database::new();
        save_corpus(&c, &mut db).unwrap();
        assert_eq!(db.table(tables::BUNDLES).unwrap().len(), c.bundles.len());
        assert_eq!(db.table(tables::PART_IDS).unwrap().len(), 31);
        assert_eq!(
            db.table(tables::ERROR_CODES).unwrap().len(),
            c.world.codes.len()
        );

        let mut loaded = load_bundles(&db).unwrap();
        let mut orig = c.bundles.clone();
        loaded.sort_by(|a, b| a.reference_number.cmp(&b.reference_number));
        orig.sort_by(|a, b| a.reference_number.cmp(&b.reference_number));
        assert_eq!(loaded, orig);
    }

    #[test]
    fn part_lookup_uses_index() {
        let c = corpus();
        let mut db = Database::new();
        save_corpus(&c, &mut db).unwrap();
        let part = &c.bundles[0].part_id;
        let subset = load_bundles_for_part(&db, part).unwrap();
        assert!(!subset.is_empty());
        assert!(subset.iter().all(|b| &b.part_id == part));
        let expected = c.bundles.iter().filter(|b| &b.part_id == part).count();
        assert_eq!(subset.len(), expected);
    }

    #[test]
    fn snapshot_roundtrip_through_disk_format() {
        let c = corpus();
        let mut db = Database::new();
        save_corpus(&c, &mut db).unwrap();
        let bytes = db.to_bytes();
        let db2 = Database::from_bytes(&bytes).unwrap();
        let a = load_bundles(&db).unwrap();
        let b = load_bundles(&db2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn double_schema_creation_errors() {
        let mut db = Database::new();
        create_schema(&mut db).unwrap();
        assert!(create_schema(&mut db).is_err());
    }

    #[test]
    fn optional_fields_survive_nulls() {
        let c = corpus();
        // find a bundle without initial report
        let b = c
            .bundles
            .iter()
            .find(|b| b.initial_report.is_none())
            .expect("some bundle lacks an initial report");
        let mut db = Database::new();
        create_schema(&mut db).unwrap();
        db.insert(tables::BUNDLES, bundle_row(b)).unwrap();
        let loaded = load_bundles(&db).unwrap();
        assert_eq!(&loaded[0], b);
    }
}
