//! Corpus statistics — the §3.2 numbers, recomputed from a generated corpus
//! so the data_stats experiment can print paper-vs-measured.

use std::collections::{HashMap, HashSet};

use crate::bundle::SourceSelection;
use crate::generator::Corpus;

/// All statistics the paper reports about its data set.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total data bundles (paper: 7 500).
    pub n_bundles: usize,
    /// Distinct part IDs (paper: 31).
    pub n_part_ids: usize,
    /// Distinct article codes (paper: 831).
    pub n_article_codes: usize,
    /// Distinct error codes (paper: 1 271).
    pub n_error_codes: usize,
    /// Error codes appearing exactly once (paper: 718).
    pub singleton_codes: usize,
    /// Classes left after removing singletons (paper: 553).
    pub usable_classes: usize,
    /// Bundles whose code appears more than once (paper: 6 782).
    pub usable_bundles: usize,
    /// Largest number of distinct codes observed for one part ID (paper: 146).
    pub max_codes_per_part: usize,
    /// Part IDs with more than 10 distinct observed codes (paper: 25 of 31).
    pub parts_with_over_10_codes: usize,
    /// Mean whitespace words per bundle over all sources (paper: ≈70).
    pub avg_words_per_bundle: f64,
}

impl CorpusStats {
    /// Compute over a corpus.
    pub fn compute(corpus: &Corpus) -> Self {
        let bundles = &corpus.bundles;
        let mut code_counts: HashMap<&str, usize> = HashMap::new();
        let mut part_ids: HashSet<&str> = HashSet::new();
        let mut article_codes: HashSet<&str> = HashSet::new();
        let mut codes_per_part: HashMap<&str, HashSet<&str>> = HashMap::new();
        let mut words = 0usize;

        for b in bundles {
            part_ids.insert(&b.part_id);
            article_codes.insert(&b.article_code);
            if let Some(code) = b.error_code.as_deref() {
                *code_counts.entry(code).or_insert(0) += 1;
                codes_per_part.entry(&b.part_id).or_default().insert(code);
            }
            words += b.word_count(SourceSelection::Training);
        }

        let singleton_codes = code_counts.values().filter(|&&c| c == 1).count();
        let usable_classes = code_counts.len() - singleton_codes;
        let usable_bundles = code_counts.values().filter(|&&c| c > 1).sum::<usize>();
        let max_codes_per_part = codes_per_part.values().map(HashSet::len).max().unwrap_or(0);
        let parts_with_over_10_codes = codes_per_part.values().filter(|s| s.len() > 10).count();

        CorpusStats {
            n_bundles: bundles.len(),
            n_part_ids: part_ids.len(),
            n_article_codes: article_codes.len(),
            n_error_codes: code_counts.len(),
            singleton_codes,
            usable_classes,
            usable_bundles,
            max_codes_per_part,
            parts_with_over_10_codes,
            avg_words_per_bundle: if bundles.is_empty() {
                0.0
            } else {
                words as f64 / bundles.len() as f64
            },
        }
    }

    /// The paper's reference values, for side-by-side reporting.
    pub fn paper_reference() -> Self {
        CorpusStats {
            n_bundles: 7_500,
            n_part_ids: 31,
            n_article_codes: 831,
            n_error_codes: 1_271,
            singleton_codes: 718,
            usable_classes: 553,
            usable_bundles: 6_782,
            max_codes_per_part: 146,
            parts_with_over_10_codes: 25,
            avg_words_per_bundle: 70.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Corpus, CorpusConfig};

    #[test]
    fn small_corpus_stats_consistent() {
        let c = Corpus::generate(CorpusConfig::small(5));
        let s = CorpusStats::compute(&c);
        assert_eq!(s.n_bundles, 600);
        assert_eq!(s.n_part_ids, 31);
        assert_eq!(s.n_error_codes, c.world.codes.len());
        assert_eq!(s.usable_classes + s.singleton_codes, s.n_error_codes);
        assert_eq!(s.usable_bundles, c.evaluable_bundles().len());
        assert!(s.avg_words_per_bundle > 30.0);
        assert!(s.max_codes_per_part >= 10);
    }

    #[test]
    fn paper_reference_is_the_published_table() {
        let p = CorpusStats::paper_reference();
        assert_eq!(p.n_bundles, 7_500);
        assert_eq!(p.singleton_codes, 718);
        assert_eq!(p.usable_classes, 553);
        assert_eq!(p.usable_bundles, 6_782);
    }

    #[test]
    fn usable_bundles_counts_multi_occurrence_mass() {
        let c = Corpus::generate(CorpusConfig::small(6));
        let s = CorpusStats::compute(&c);
        assert_eq!(s.usable_bundles + s.singleton_codes, s.n_bundles);
    }
}
