//! Data bundles: "all data pertaining to an individual component" (paper
//! §3.2, Fig. 3) — structured identifiers plus the accumulated textual
//! reports of the evaluation process (Fig. 2).

use qatk_text::cas::Cas;

/// The textual sources a bundle can carry. Order mirrors the process of data
/// accumulation: mechanic → (initial OEM) → supplier → final OEM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportSource {
    Mechanic,
    InitialOem,
    Supplier,
    FinalOem,
    PartDescription,
    ErrorDescription,
}

impl ReportSource {
    /// Segment name used in the CAS.
    pub fn segment_name(self) -> &'static str {
        match self {
            ReportSource::Mechanic => "mechanic_report",
            ReportSource::InitialOem => "initial_oem_report",
            ReportSource::Supplier => "supplier_report",
            ReportSource::FinalOem => "final_oem_report",
            ReportSource::PartDescription => "part_description",
            ReportSource::ErrorDescription => "error_description",
        }
    }
}

/// Which text sources feed feature extraction. The paper trains on all
/// sources but tests only on what exists *before* a code is assigned: "In
/// the testing phase, we use only the mechanic report, the optional initial
/// report, the supplier report and the part id description" (§3.2).
/// Experiment 2 narrows further to a single report type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SourceSelection {
    /// Everything, including final report and error description (training).
    Training,
    /// Mechanic + initial + supplier reports + part description (testing).
    #[default]
    Test,
    /// Mechanic report + part description only (Experiment 2, Fig. 12).
    MechanicOnly,
    /// Supplier report + part description only (Experiment 2, Fig. 13).
    SupplierOnly,
}

impl SourceSelection {
    /// The sources included under this selection.
    pub fn sources(self) -> &'static [ReportSource] {
        match self {
            SourceSelection::Training => &[
                ReportSource::Mechanic,
                ReportSource::InitialOem,
                ReportSource::Supplier,
                ReportSource::FinalOem,
                ReportSource::PartDescription,
                ReportSource::ErrorDescription,
            ],
            SourceSelection::Test => &[
                ReportSource::Mechanic,
                ReportSource::InitialOem,
                ReportSource::Supplier,
                ReportSource::PartDescription,
            ],
            SourceSelection::MechanicOnly => {
                &[ReportSource::Mechanic, ReportSource::PartDescription]
            }
            SourceSelection::SupplierOnly => {
                &[ReportSource::Supplier, ReportSource::PartDescription]
            }
        }
    }
}

/// One data bundle (paper Fig. 3). Optional fields are the ones the paper
/// marks optional or that only exist after evaluation steps have run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataBundle {
    /// Unique reference number ("a component is identified by a unique
    /// reference number").
    pub reference_number: String,
    /// Article code — fine-grained (831 distinct in the paper's data).
    pub article_code: String,
    /// Part ID — coarse-grained (31 distinct).
    pub part_id: String,
    /// Final error code; `None` until the quality expert assigns one.
    pub error_code: Option<String>,
    /// Damage responsibility code assigned by the supplier.
    pub responsibility_code: Option<String>,
    pub mechanic_report: String,
    pub initial_report: Option<String>,
    pub supplier_report: String,
    pub final_report: Option<String>,
    /// Standardized description of the part ID.
    pub part_description: String,
    /// Standardized description of the error code (exists only once a code
    /// is assigned; never available at test time).
    pub error_description: Option<String>,
}

impl DataBundle {
    /// Text of one source, if present.
    pub fn text_of(&self, source: ReportSource) -> Option<&str> {
        match source {
            ReportSource::Mechanic => Some(&self.mechanic_report),
            ReportSource::InitialOem => self.initial_report.as_deref(),
            ReportSource::Supplier => Some(&self.supplier_report),
            ReportSource::FinalOem => self.final_report.as_deref(),
            ReportSource::PartDescription => Some(&self.part_description),
            ReportSource::ErrorDescription => self.error_description.as_deref(),
        }
    }

    /// Build the CAS for this bundle under a source selection: "one CAS
    /// contains one data bundle, including all available reports and text
    /// descriptions plus the part ID and error code" (§4.5.2).
    pub fn to_cas(&self, selection: SourceSelection) -> Cas {
        let mut cas = Cas::new();
        for &source in selection.sources() {
            if let Some(text) = self.text_of(source) {
                if !text.is_empty() {
                    cas.add_segment(source.segment_name(), text);
                }
            }
        }
        cas.part_id = Some(self.part_id.clone());
        cas.error_code = self.error_code.clone();
        cas
    }

    /// Total whitespace-separated word count over the given selection; the
    /// statistic behind the paper's "on average, a text has about 70 words".
    pub fn word_count(&self, selection: SourceSelection) -> usize {
        selection
            .sources()
            .iter()
            .filter_map(|&s| self.text_of(s))
            .map(|t| t.split_whitespace().count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> DataBundle {
        DataBundle {
            reference_number: "R-000001".into(),
            article_code: "A-12345".into(),
            part_id: "P-07".into(),
            error_code: Some("E4431".into()),
            responsibility_code: Some("RC-2".into()),
            mechanic_report: "Kleint says taht radio turns on and off by itself.".into(),
            initial_report: Some("id test 470, no clear results, sending to supplier.".into()),
            supplier_report:
                "Unit non-functional. Lüfter funktioniert nicht. Kontakt defekt, durchgeschmort."
                    .into(),
            final_report: Some("Removed some dirt. Contact melted, code assigned.".into()),
            part_description: "Radio control unit type 4".into(),
            error_description: Some("Contact burnt through at connector".into()),
        }
    }

    #[test]
    fn source_selection_contents() {
        assert_eq!(SourceSelection::Training.sources().len(), 6);
        assert_eq!(SourceSelection::Test.sources().len(), 4);
        assert!(!SourceSelection::Test
            .sources()
            .contains(&ReportSource::FinalOem));
        assert!(!SourceSelection::Test
            .sources()
            .contains(&ReportSource::ErrorDescription));
        assert_eq!(SourceSelection::MechanicOnly.sources().len(), 2);
        assert_eq!(SourceSelection::SupplierOnly.sources().len(), 2);
        assert_eq!(SourceSelection::default(), SourceSelection::Test);
    }

    #[test]
    fn cas_segments_match_selection() {
        let b = sample();
        let cas = b.to_cas(SourceSelection::Training);
        let names: Vec<&str> = cas.segments().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "mechanic_report",
                "initial_oem_report",
                "supplier_report",
                "final_oem_report",
                "part_description",
                "error_description"
            ]
        );
        assert_eq!(cas.part_id.as_deref(), Some("P-07"));
        assert_eq!(cas.error_code.as_deref(), Some("E4431"));

        let test_cas = b.to_cas(SourceSelection::Test);
        assert_eq!(test_cas.segments().len(), 4);
        assert!(!test_cas.text().contains("Contact burnt through"));

        let mech = b.to_cas(SourceSelection::MechanicOnly);
        assert!(mech.text().contains("radio turns on"));
        assert!(!mech.text().contains("durchgeschmort"));
    }

    #[test]
    fn missing_optional_reports_skipped() {
        let mut b = sample();
        b.initial_report = None;
        b.final_report = None;
        b.error_description = None;
        let cas = b.to_cas(SourceSelection::Training);
        assert_eq!(cas.segments().len(), 3);
        assert!(b.text_of(ReportSource::InitialOem).is_none());
    }

    #[test]
    fn empty_texts_do_not_create_segments() {
        let mut b = sample();
        b.mechanic_report = String::new();
        let cas = b.to_cas(SourceSelection::Test);
        assert!(cas.segment("mechanic_report").is_none());
    }

    #[test]
    fn word_count_sums_selection() {
        let b = sample();
        let full = b.word_count(SourceSelection::Training);
        let test = b.word_count(SourceSelection::Test);
        let mech = b.word_count(SourceSelection::MechanicOnly);
        assert!(full > test);
        assert!(test > mech);
        assert_eq!(mech, 10 + 5); // mechanic report + part description
    }
}
