//! Million-bundle synthetic corpus tiers for scale benchmarking.
//!
//! The paper's corpus is 7 500 bundles; the ROADMAP north star is serving
//! millions. Generating millions of *textual* bundles through the template +
//! messify path would dominate every benchmark with string work that the
//! index never sees, so the scale tiers generate straight at the feature
//! level: each bundle is a `(part, error code, feature-id set)` triple with
//! the statistical shape the index cares about —
//!
//! * **per-code signatures**: every error code owns a 16-feature signature
//!   drawn uniformly from its part's vocabulary window, and each bundle of
//!   that code realizes a random 12–14-feature subset of it — so bundles of
//!   the same code cluster at Jaccard ≈ 0.4–0.65 while bundles of different
//!   codes share almost nothing through their signatures;
//! * **Zipf-hot boilerplate noise**: every bundle additionally carries a few
//!   features from a small shared boilerplate pool with Zipf-skewed hotness
//!   (real reports share formulaic phrases; word frequencies are Zipfian).
//!   The hot boilerplate features produce the posting lists hundreds of
//!   thousands of entries long that make *exact* posting-list scoring
//!   expensive at the 1M tier — while contributing almost nothing to any
//!   pairwise similarity (background Jaccard stays ≲ 0.05). This is exactly
//!   the regime where an LSH prefilter pays: candidates are separated by
//!   signature overlap, not by who shares the word "defekt";
//! * **Zipf-skewed code popularity** within each part, mirroring the paper's
//!   §3.2 frequency skew.
//!
//! Everything is derived from one `StdRng` seeded by [`ScaleConfig::seed`],
//! so a tier is reproducible across runs and machines, and bundles are
//! stored in one flat arena (`starts`/`features`) rather than per-bundle
//! `Vec`s — at the 10M tier, per-bundle allocations alone would cost more
//! memory than the data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// The three named corpus scale tiers (plus [`ScaleConfig::custom`] for
/// arbitrary sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTier {
    /// 100 000 bundles — runs on every PR in the `scale-bench` CI job.
    T100k,
    /// 1 000 000 bundles — the nightly tier.
    T1m,
    /// 10 000 000 bundles — the headroom knob (multi-GB; not in CI).
    T10m,
}

impl ScaleTier {
    /// Parse a tier label as accepted by `quest gen-corpus --scale` and
    /// `bench_report --scale`.
    pub fn parse(s: &str) -> Option<ScaleTier> {
        match s {
            "100k" => Some(ScaleTier::T100k),
            "1m" => Some(ScaleTier::T1m),
            "10m" => Some(ScaleTier::T10m),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ScaleTier::T100k => "100k",
            ScaleTier::T1m => "1m",
            ScaleTier::T10m => "10m",
        }
    }

    pub fn n_bundles(self) -> usize {
        match self {
            ScaleTier::T100k => 100_000,
            ScaleTier::T1m => 1_000_000,
            ScaleTier::T10m => 10_000_000,
        }
    }
}

/// Generator configuration for one scale tier.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    pub seed: u64,
    pub n_bundles: usize,
    /// Distinct part IDs. Kept small so per-part knowledge grows with the
    /// tier — the point of the exercise is *dense* parts, not more of them.
    pub n_parts: usize,
    /// Error codes per part; `n_parts * codes_per_part` distinct codes.
    pub codes_per_part: usize,
    /// Global feature-id space (the sealed vocabulary size). The first
    /// [`ScaleConfig::boilerplate`] ids are the shared boilerplate pool; the
    /// rest is signature space.
    pub vocab: u32,
    /// Per-part signature window: each part draws code signatures from a
    /// `pool`-wide window of the signature space, so parts have dialects
    /// that partially overlap.
    pub pool: u32,
    /// Size of the shared boilerplate pool (feature ids `0..boilerplate`).
    pub boilerplate: u32,
    /// Boilerplate noise features drawn per bundle (before dedup).
    pub noise_features: usize,
    /// Zipf exponent of boilerplate hotness.
    pub noise_zipf_s: f64,
    /// Zipf exponent of code popularity within a part.
    pub code_zipf_s: f64,
    /// Features per code signature.
    pub signature_len: usize,
}

impl ScaleConfig {
    /// The calibrated configuration of a named tier. Cluster size (bundles
    /// per code) stays ≈ 60 across tiers — comfortably above the paper's
    /// top-25 ranking cut even at the Zipf popularity tail, so a query's
    /// exact top-25 nodes are saturated by its own code's cluster (which is
    /// what lets the LSH-pruned path reproduce the exact code list; a
    /// cluster that dips below 25 lets arbitrary weak-tie nodes into the
    /// exact top-25, and no similarity-based prefilter can find those).
    /// Per-part density grows ~10× per tier, which is what stretches the
    /// posting lists.
    pub fn tier(tier: ScaleTier, seed: u64) -> ScaleConfig {
        let (n_bundles, n_parts, codes_per_part, vocab, pool) = match tier {
            ScaleTier::T100k => (100_000, 24, 70, 30_000, 6_000),
            ScaleTier::T1m => (1_000_000, 30, 555, 60_000, 7_500),
            ScaleTier::T10m => (10_000_000, 60, 2_750, 120_000, 12_000),
        };
        ScaleConfig {
            seed,
            n_bundles,
            n_parts,
            codes_per_part,
            vocab,
            pool,
            boilerplate: 1_024,
            noise_features: 4,
            noise_zipf_s: 1.1,
            code_zipf_s: 0.4,
            signature_len: 16,
        }
    }

    /// A custom bundle count with tier-shaped parameters — used by tests
    /// that want the same statistics at a few thousand bundles.
    pub fn custom(n_bundles: usize, seed: u64) -> ScaleConfig {
        let n_parts = 8;
        // keep the ≈60-bundle code clusters of the named tiers
        let codes_per_part = (n_bundles / (n_parts * 60)).max(4);
        ScaleConfig {
            seed,
            n_bundles,
            n_parts,
            codes_per_part,
            vocab: 8_000,
            pool: 1_500,
            boilerplate: 256,
            noise_features: 4,
            noise_zipf_s: 1.1,
            code_zipf_s: 0.4,
            signature_len: 16,
        }
    }
}

/// One bundle of a scale corpus, viewed in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleBundle<'a> {
    /// Dense part index, `0..n_parts`.
    pub part: u32,
    /// Global code index, `0..n_parts * codes_per_part`.
    pub code: u32,
    /// Sorted, deduplicated feature ids.
    pub features: &'a [u32],
}

/// A generated scale corpus: flat bundle arena plus the latent per-code
/// signatures (kept so query streams can be drawn from the same
/// distribution as the training data).
#[derive(Debug, Clone)]
pub struct ScaleCorpus {
    pub config: ScaleConfig,
    /// Per-part signature-window base offsets, `n_parts` long.
    pub part_salts: Vec<u32>,
    /// Flat code signatures, `n_codes * signature_len` long.
    pub signatures: Vec<u32>,
    /// Per-bundle dense part index.
    pub parts: Vec<u32>,
    /// Per-bundle global code index.
    pub codes: Vec<u32>,
    /// Feature-arena offsets, `n_bundles + 1` long.
    pub starts: Vec<u32>,
    /// Flat feature arena: bundle `i` owns `features[starts[i]..starts[i+1]]`,
    /// sorted and deduplicated.
    pub features: Vec<u32>,
}

impl ScaleCorpus {
    /// Generate a corpus; deterministic for a given config.
    pub fn generate(config: ScaleConfig) -> ScaleCorpus {
        assert!(config.n_parts > 0 && config.codes_per_part > 0);
        assert!(config.boilerplate < config.vocab);
        let sig_space = config.vocab - config.boilerplate;
        assert!(config.pool <= sig_space);
        assert!(config.pool as usize >= config.signature_len * 2);
        assert!(config.signature_len >= 4, "signature too short to subset");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5CA1_EB0B);
        let n_codes = config.n_parts * config.codes_per_part;
        let noise_zipf = Zipf::new(config.boilerplate as usize, config.noise_zipf_s);
        let code_zipf = Zipf::new(config.codes_per_part, config.code_zipf_s);

        // per-part signature windows and per-code signatures (uniform draws
        // within the window — signatures carry the discriminative signal, so
        // they must NOT be hot-skewed; hotness lives in the boilerplate pool)
        let mut part_salts = Vec::with_capacity(config.n_parts);
        let mut signatures = vec![0u32; n_codes * config.signature_len];
        for part in 0..config.n_parts {
            let salt = rng.random_range(0..sig_space);
            part_salts.push(salt);
            for c in 0..config.codes_per_part {
                let code = part * config.codes_per_part + c;
                let sig = &mut signatures[code * config.signature_len..][..config.signature_len];
                let mut k = 0;
                while k < config.signature_len {
                    let r = rng.random_range(0..config.pool);
                    let f = config.boilerplate + (salt + r) % sig_space;
                    if !sig[..k].contains(&f) {
                        sig[k] = f;
                        k += 1;
                    }
                }
            }
        }

        // bundles
        let mut parts = Vec::with_capacity(config.n_bundles);
        let mut codes = Vec::with_capacity(config.n_bundles);
        let mut starts = Vec::with_capacity(config.n_bundles + 1);
        let mut features: Vec<u32> = Vec::with_capacity(
            config.n_bundles * (config.signature_len * 7 / 8 + config.noise_features),
        );
        starts.push(0u32);
        let mut scratch: Vec<u32> =
            Vec::with_capacity(config.signature_len + config.noise_features);
        for _ in 0..config.n_bundles {
            let part = rng.random_range(0..config.n_parts) as u32;
            let code = part * config.codes_per_part as u32 + code_zipf.sample(&mut rng) as u32;
            realize(
                &config,
                &signatures,
                &noise_zipf,
                code,
                &mut rng,
                &mut scratch,
            );
            features.extend_from_slice(&scratch);
            parts.push(part);
            codes.push(code);
            let end = u32::try_from(features.len()).expect("feature arena under 4G ids");
            starts.push(end);
        }
        ScaleCorpus {
            config,
            part_salts,
            signatures,
            parts,
            codes,
            starts,
            features,
        }
    }

    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Bundle `i`, viewed in place.
    pub fn bundle(&self, i: usize) -> ScaleBundle<'_> {
        ScaleBundle {
            part: self.parts[i],
            code: self.codes[i],
            features: &self.features[self.starts[i] as usize..self.starts[i + 1] as usize],
        }
    }

    /// Iterate all bundles in generation order.
    pub fn bundles(&self) -> impl Iterator<Item = ScaleBundle<'_>> {
        (0..self.len()).map(|i| self.bundle(i))
    }

    /// Distinct codes actually used by at least one bundle.
    pub fn distinct_codes(&self) -> usize {
        let n_codes = self.config.n_parts * self.config.codes_per_part;
        let mut seen = vec![false; n_codes];
        for &c in &self.codes {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Mean features per bundle.
    pub fn avg_features(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.features.len() as f64 / self.len() as f64
    }

    /// Display name of a dense part index (stable across tiers).
    pub fn part_name(part: u32) -> String {
        format!("SP-{part:04}")
    }

    /// Display name of a global code index.
    pub fn code_name(code: u32) -> String {
        format!("SE-{code:06}")
    }

    /// A deterministic query stream drawn from the same distribution as the
    /// training bundles: each query picks a uniform code and realizes a
    /// fresh feature subset of its signature — so every query has true
    /// near-neighbours in the corpus without being a verbatim copy of any.
    /// Returns `(part, sorted feature ids)` pairs.
    pub fn queries(&self, n: usize, seed: u64) -> Vec<(u32, Vec<u32>)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0FF5_E7ED);
        let noise_zipf = Zipf::new(self.config.boilerplate as usize, self.config.noise_zipf_s);
        let n_codes = (self.config.n_parts * self.config.codes_per_part) as u32;
        let mut scratch: Vec<u32> = Vec::new();
        (0..n)
            .map(|_| {
                let code = rng.random_range(0..n_codes);
                let part = code / self.config.codes_per_part as u32;
                realize(
                    &self.config,
                    &self.signatures,
                    &noise_zipf,
                    code,
                    &mut rng,
                    &mut scratch,
                );
                (part, scratch.clone())
            })
            .collect()
    }
}

/// Realize one bundle / query of `code` into `out`: a random 3/4–7/8 subset
/// of the code signature plus `noise_features` Zipf-hot boilerplate
/// features, sorted and deduplicated.
fn realize(
    config: &ScaleConfig,
    signatures: &[u32],
    noise_zipf: &Zipf,
    code: u32,
    rng: &mut StdRng,
    out: &mut Vec<u32>,
) {
    let sig = &signatures[code as usize * config.signature_len..][..config.signature_len];
    let lo = config.signature_len * 3 / 4;
    let hi = config.signature_len * 7 / 8;
    let take = rng.random_range(lo..=hi);
    out.clear();
    out.extend_from_slice(sig);
    // partial Fisher–Yates: the first `take` slots become a uniform subset
    for i in 0..take {
        let j = rng.random_range(i..config.signature_len);
        out.swap(i, j);
    }
    out.truncate(take);
    for _ in 0..config.noise_features {
        out.push(noise_zipf.sample(rng) as u32);
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleCorpus {
        ScaleCorpus::generate(ScaleConfig::custom(3_000, 7))
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny();
        let b = ScaleCorpus::generate(ScaleConfig::custom(3_000, 7));
        assert_eq!(a.features, b.features);
        assert_eq!(a.codes, b.codes);
        assert_eq!(a.signatures, b.signatures);
        let c = ScaleCorpus::generate(ScaleConfig::custom(3_000, 8));
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn bundles_are_sorted_dedup_and_consistent() {
        let c = tiny();
        assert_eq!(c.len(), 3_000);
        for b in c.bundles() {
            assert!(b.features.windows(2).all(|w| w[0] < w[1]), "unsorted");
            assert!(!b.features.is_empty());
            assert!(b.features.iter().all(|&f| f < c.config.vocab));
            assert_eq!(b.part, b.code / c.config.codes_per_part as u32);
            assert!((b.part as usize) < c.config.n_parts);
        }
        // boilerplate noise actually present in most bundles
        let noisy = c
            .bundles()
            .filter(|b| b.features.iter().any(|&f| f < c.config.boilerplate))
            .count();
        assert!(noisy > c.len() / 2, "boilerplate missing: {noisy}");
    }

    #[test]
    fn boilerplate_is_hot_and_signatures_are_not() {
        // the hottest feature must be a boilerplate id with a posting list
        // far longer than any signature feature's — that skew is what makes
        // exact scoring expensive at scale
        let c = tiny();
        let mut freq = vec![0u32; c.config.vocab as usize];
        for &f in &c.features {
            freq[f as usize] += 1;
        }
        let hot_bp = (0..c.config.boilerplate as usize)
            .map(|f| freq[f])
            .max()
            .unwrap();
        let hot_sig = (c.config.boilerplate as usize..c.config.vocab as usize)
            .map(|f| freq[f])
            .max()
            .unwrap();
        assert!(
            hot_bp > hot_sig * 5,
            "boilerplate not hot: {hot_bp} vs {hot_sig}"
        );
        // the hottest boilerplate feature appears in a large share of bundles
        assert!(
            hot_bp as usize > c.len() / 5,
            "hot posting too short: {hot_bp}"
        );
    }

    #[test]
    fn same_code_bundles_cluster_in_jaccard() {
        let c = tiny();
        let mut by_code: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for (i, &code) in c.codes.iter().enumerate() {
            by_code.entry(code).or_default().push(i);
        }
        let jaccard = |a: &[u32], b: &[u32]| {
            let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
            inter as f64 / (a.len() + b.len() - inter) as f64
        };
        let (mut same_sum, mut same_n) = (0.0, 0usize);
        for ids in by_code.values().filter(|v| v.len() >= 2).take(50) {
            same_sum += jaccard(c.bundle(ids[0]).features, c.bundle(ids[1]).features);
            same_n += 1;
        }
        let same = same_sum / same_n as f64;
        // cross-code pairs (arbitrary neighbours in generation order)
        let (mut cross_sum, mut cross_n) = (0.0, 0usize);
        for i in (0..c.len() - 1).step_by(37).take(50) {
            if c.codes[i] != c.codes[i + 1] {
                cross_sum += jaccard(c.bundle(i).features, c.bundle(i + 1).features);
                cross_n += 1;
            }
        }
        let cross = cross_sum / cross_n as f64;
        assert!(same > 0.35, "same-code Jaccard too low: {same:.2}");
        assert!(cross < 0.15, "cross-code Jaccard too high: {cross:.2}");
        assert!(
            same > cross + 0.25,
            "no cluster structure: {same:.2} vs {cross:.2}"
        );
    }

    #[test]
    fn queries_are_deterministic_and_well_formed() {
        let c = tiny();
        let q1 = c.queries(64, 11);
        let q2 = c.queries(64, 11);
        assert_eq!(q1, q2);
        assert_ne!(q1, c.queries(64, 12));
        for (part, feats) in &q1 {
            assert!((*part as usize) < c.config.n_parts);
            assert!(feats.windows(2).all(|w| w[0] < w[1]));
            assert!(!feats.is_empty());
        }
    }

    #[test]
    fn tier_labels_roundtrip() {
        for t in [ScaleTier::T100k, ScaleTier::T1m, ScaleTier::T10m] {
            assert_eq!(ScaleTier::parse(t.label()), Some(t));
            let cfg = ScaleConfig::tier(t, 1);
            assert_eq!(cfg.n_bundles, t.n_bundles());
            // cluster size stays ≈ 60 across tiers (see `tier` docs)
            let cluster = cfg.n_bundles as f64 / (cfg.n_parts * cfg.codes_per_part) as f64;
            assert!((50.0..=70.0).contains(&cluster), "cluster = {cluster}");
        }
        assert_eq!(ScaleTier::parse("2m"), None);
    }
}
