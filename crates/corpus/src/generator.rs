//! The corpus generator: assembles calibrated, messy, multilingual data
//! bundles from the fault world.
//!
//! Calibration targets (paper §3.2): 7 500 bundles, 31 part IDs, 831 article
//! codes, 1 271 distinct error codes of which ~718 appear exactly once,
//! leaving ~553 usable classes over ~6 782 bundles; ≈70 words of text per
//! bundle. The error-code skew per part ID is Zipfian so that the code
//! frequency baseline lands near the paper's 35 % accuracy@1.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qatk_taxonomy::concept::Lang;
use qatk_taxonomy::synthetic::SyntheticTaxonomy;

use crate::bundle::DataBundle;
use crate::faults::{surface, FaultWorld};
use crate::messy::{messify, MessyConfig};
use crate::templates::{
    final_report, initial_report, mechanic_report, supplier_report, ReportContext,
};
use crate::zipf::Zipf;

/// Generator configuration; defaults reproduce the paper's data statistics.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    pub seed: u64,
    /// Total bundles (paper: 7 500).
    pub n_bundles: usize,
    /// Article codes across all part IDs (paper: 831).
    pub n_article_codes: usize,
    /// Zipf exponent of the per-part error-code skew.
    pub zipf_s: f64,
    /// Probability a bundle has an initial OEM report (the report is
    /// "optional" in the paper's process).
    pub initial_report_prob: f64,
    /// Language mix per source.
    pub mechanic_german_prob: f64,
    pub supplier_german_prob: f64,
    /// Probability the mechanic mentions the true primary symptom (low:
    /// mechanic reports are "poor in detail ... superficial").
    pub mechanic_truth_prob: f64,
    /// Probability the mechanic names the affected component at all.
    pub mechanic_component_prob: f64,
    /// Scale factor applied to the per-part error-code pools (1.0 = the
    /// paper's 1 271 codes; smaller values give fast test corpora with the
    /// same shape).
    pub pool_scale: f64,
    /// Fraction of each part's code pool that recurs ("head" codes). The
    /// remaining tail codes appear exactly once, which is what produces the
    /// paper's 718 singleton codes out of 1 271.
    pub head_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xEDB7_2016,
            n_bundles: 7_500,
            n_article_codes: 831,
            zipf_s: 1.35,
            initial_report_prob: 0.4,
            mechanic_german_prob: 0.4,
            supplier_german_prob: 0.6,
            mechanic_truth_prob: 0.35,
            mechanic_component_prob: 0.55,
            pool_scale: 1.0,
            head_fraction: 0.46,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for tests and examples (fast to generate and
    /// classify, same structure).
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            seed,
            n_bundles: 600,
            n_article_codes: 120,
            pool_scale: 0.08,
            ..CorpusConfig::default()
        }
    }
}

/// A generated corpus: the taxonomy it was written against, the latent fault
/// world, and the bundles themselves.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub taxonomy: SyntheticTaxonomy,
    pub world: FaultWorld,
    pub bundles: Vec<DataBundle>,
}

impl Corpus {
    /// Generate with the paper-scale defaults.
    pub fn generate(config: CorpusConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let taxonomy = SyntheticTaxonomy::generate(config.seed ^ 0x5EED);
        let world = FaultWorld::generate_scaled(
            &taxonomy,
            config.n_article_codes,
            config.pool_scale,
            &mut rng,
        );
        let bundles = generate_bundles(&config, &taxonomy, &world, &mut rng);
        Corpus {
            config,
            taxonomy,
            world,
            bundles,
        }
    }

    /// Bundles whose error code appears more than once — the evaluable subset
    /// (paper: 6 782 of 7 500; "718 ... only appear a single time, so we
    /// remove them for our experiments").
    pub fn evaluable_bundles(&self) -> Vec<&DataBundle> {
        let mut counts = std::collections::HashMap::new();
        for b in &self.bundles {
            if let Some(code) = &b.error_code {
                *counts.entry(code.as_str()).or_insert(0usize) += 1;
            }
        }
        self.bundles
            .iter()
            .filter(|b| {
                b.error_code
                    .as_ref()
                    .is_some_and(|c| counts[c.as_str()] > 1)
            })
            .collect()
    }
}

/// Capitalize the first letter of each word (German noun style).
fn capitalize(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn generate_bundles(
    config: &CorpusConfig,
    syn: &SyntheticTaxonomy,
    world: &FaultWorld,
    rng: &mut StdRng,
) -> Vec<DataBundle> {
    assert!(
        config.n_bundles >= world.codes.len(),
        "need at least one bundle per error code ({} < {})",
        config.n_bundles,
        world.codes.len()
    );

    // --- choose the error code of every bundle ---------------------------
    // Phase A: every code appears once (the long tail, incl. singletons).
    let mut code_choices: Vec<usize> = (0..world.codes.len()).collect();
    // Phase B: remaining mass drawn Zipf-skewed within Zipf-weighted parts.
    let part_weights: Vec<usize> = world
        .parts
        .iter()
        .map(|p| world.codes_by_part[&p.part_id].len())
        .collect();
    let total_weight: usize = part_weights.iter().sum();
    // Phase-B draws come from each part's *head* codes only: the tail stays
    // at one occurrence each (the paper's singleton codes).
    let head_sizes: Vec<usize> = part_weights
        .iter()
        .map(|&n| ((n as f64 * config.head_fraction).round() as usize).clamp(1, n))
        .collect();
    let samplers: Vec<Zipf> = head_sizes
        .iter()
        .map(|&n| Zipf::new(n, config.zipf_s))
        .collect();
    for _ in world.codes.len()..config.n_bundles {
        let mut w = rng.random_range(0..total_weight);
        let mut part_idx = 0usize;
        for (i, &pw) in part_weights.iter().enumerate() {
            if w < pw {
                part_idx = i;
                break;
            }
            w -= pw;
        }
        let rank = samplers[part_idx].sample(rng);
        let pool = &world.codes_by_part[&world.parts[part_idx].part_id];
        code_choices.push(pool[rank]);
    }
    code_choices.shuffle(rng);

    // generic symptoms the customer voice falls back to; a wide pool keeps
    // two unrelated bundles from sharing the same noise complaint too often
    let generic_pool: Vec<_> = (0..24)
        .map(|_| syn.symptoms[rng.random_range(0..syn.symptoms.len())])
        .collect();

    // --- realize the bundles ---------------------------------------------
    let tax = &syn.taxonomy;
    let mut bundles = Vec::with_capacity(config.n_bundles);
    for (i, &code_idx) in code_choices.iter().enumerate() {
        let code = &world.codes[code_idx];
        let part = world.part(&code.part_id).expect("code part exists");

        let mech_lang = if rng.random_bool(config.mechanic_german_prob) {
            Lang::De
        } else {
            Lang::En
        };
        // the part's supplier sticks to its house language most of the time
        let supp_lang = if rng.random_bool(0.8) {
            part.supplier_lang
        } else if rng.random_bool(config.supplier_german_prob) {
            Lang::De
        } else {
            Lang::En
        };
        let oem_lang = if rng.random_bool(0.5) {
            Lang::De
        } else {
            Lang::En
        };

        let location = syn.locations[rng.random_range(0..syn.locations.len())];
        let solution = syn.solutions[rng.random_range(0..syn.solutions.len())];
        let generic = generic_pool[rng.random_range(0..generic_pool.len())];

        // Surface realization is per report: different synonym (and possibly
        // different language) in each — the messy reality the taxonomy's
        // synonym groups are built to collapse.
        let ctx_for = |lang: Lang, rng: &mut StdRng| {
            // primary symptom always realized; extras only sometimes, so
            // instances of the same code vary in their concept sets.
            // Off-taxonomy codes describe their symptom in wording the
            // concept annotator cannot map (taxonomy coverage gap).
            let primary = if code.off_taxonomy {
                match lang {
                    Lang::En => format!("irregular {}-condition", code.vocab[0]),
                    Lang::De => format!("auffälliges {}-verhalten", code.vocab[0]),
                }
            } else {
                surface(tax, code.symptoms[0], lang, rng)
            };
            let mut symptoms = vec![primary];
            for &extra in &code.symptoms[1..] {
                if rng.random_bool(0.5) {
                    symptoms.push(surface(tax, extra, lang, rng));
                }
            }
            // German nouns are capitalized in running text; the taxonomy
            // stores lowercase lemmas. The optimized annotator normalizes
            // case, the legacy annotator does not — this is the main source
            // of its coverage loss (§4.5.3).
            let mut component = surface(tax, code.component, lang, rng);
            if lang == Lang::De && rng.random_bool(0.75) {
                component = capitalize(&component);
            }
            ReportContext {
                component,
                symptoms,
                vocab: code.vocab.clone(),
                location: surface(tax, location, lang, rng),
                solution: surface(tax, solution, lang, rng),
                generic_symptom: surface(tax, generic, lang, rng),
            }
        };

        let mech_ctx = ctx_for(mech_lang, rng);
        let mention_truth = rng.random_bool(config.mechanic_truth_prob);
        let mention_comp = rng.random_bool(config.mechanic_component_prob);
        let mechanic = messify(
            &mechanic_report(&mech_ctx, mech_lang, mention_truth, mention_comp, rng),
            &MessyConfig::mechanic(),
            rng,
        );

        let initial = if rng.random_bool(config.initial_report_prob) {
            let ctx = ctx_for(oem_lang, rng);
            Some(messify(
                &initial_report(&ctx, oem_lang, rng),
                &MessyConfig::oem(),
                rng,
            ))
        } else {
            None
        };

        let supp_ctx = ctx_for(supp_lang, rng);
        let supplier = messify(
            &supplier_report(&supp_ctx, supp_lang, rng),
            &MessyConfig::supplier(),
            rng,
        );

        let final_ctx = ctx_for(oem_lang, rng);
        let final_rep = messify(
            &final_report(&final_ctx, oem_lang, rng),
            &MessyConfig::oem(),
            rng,
        );

        let part_description = if rng.random_bool(0.5) {
            part.description_en.clone()
        } else {
            part.description_de.clone()
        };

        bundles.push(DataBundle {
            reference_number: format!("R-{:06}", i + 1),
            article_code: part.article_codes[rng.random_range(0..part.article_codes.len())].clone(),
            part_id: part.part_id.clone(),
            error_code: Some(code.code.clone()),
            responsibility_code: Some(format!("RC-{}", rng.random_range(1..=5))),
            mechanic_report: mechanic,
            initial_report: initial,
            supplier_report: supplier,
            final_report: Some(final_rep),
            part_description,
            error_description: Some(code.description.clone()),
        });
    }
    bundles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SourceSelection;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_bundles: 1500,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn respects_bundle_count_and_ids() {
        let c = small();
        assert_eq!(c.bundles.len(), 1500);
        let mut refs: Vec<&String> = c.bundles.iter().map(|b| &b.reference_number).collect();
        refs.sort();
        refs.dedup();
        assert_eq!(refs.len(), 1500);
    }

    #[test]
    fn every_code_appears_at_least_once() {
        let c = small();
        let used: std::collections::HashSet<&str> = c
            .bundles
            .iter()
            .filter_map(|b| b.error_code.as_deref())
            .collect();
        assert_eq!(used.len(), c.world.codes.len());
    }

    #[test]
    fn bundle_fields_consistent_with_world() {
        let c = small();
        for b in &c.bundles {
            let part = c.world.part(&b.part_id).expect("part exists");
            assert!(part.article_codes.contains(&b.article_code));
            let code = c.world.code(b.error_code.as_deref().unwrap()).unwrap();
            assert_eq!(code.part_id, b.part_id);
            assert!(!b.mechanic_report.is_empty());
            assert!(!b.supplier_report.is_empty());
            assert!(b.final_report.is_some());
            assert!(b.error_description.is_some());
        }
    }

    #[test]
    fn word_count_near_seventy() {
        let c = small();
        let total: usize = c
            .bundles
            .iter()
            .map(|b| b.word_count(SourceSelection::Training))
            .sum();
        let avg = total as f64 / c.bundles.len() as f64;
        assert!(
            (45.0..=95.0).contains(&avg),
            "avg words per bundle = {avg:.1}, want ≈ 70"
        );
    }

    #[test]
    fn supplier_richer_than_mechanic() {
        let c = small();
        let mech: usize = c
            .bundles
            .iter()
            .map(|b| b.mechanic_report.split_whitespace().count())
            .sum();
        let supp: usize = c
            .bundles
            .iter()
            .map(|b| b.supplier_report.split_whitespace().count())
            .sum();
        assert!(supp > mech * 2, "supplier ({supp}) vs mechanic ({mech})");
    }

    #[test]
    fn initial_report_roughly_forty_percent() {
        let c = small();
        let with_initial = c
            .bundles
            .iter()
            .filter(|b| b.initial_report.is_some())
            .count();
        let share = with_initial as f64 / c.bundles.len() as f64;
        assert!((0.3..=0.5).contains(&share), "initial share = {share:.2}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Corpus::generate(CorpusConfig::small(3));
        let b = Corpus::generate(CorpusConfig::small(3));
        assert_eq!(a.bundles, b.bundles);
        let c = Corpus::generate(CorpusConfig::small(4));
        assert_ne!(a.bundles, c.bundles);
    }

    #[test]
    fn evaluable_excludes_singletons() {
        let c = small();
        let eval = c.evaluable_bundles();
        assert!(eval.len() < c.bundles.len());
        let mut counts = std::collections::HashMap::new();
        for b in &c.bundles {
            *counts
                .entry(b.error_code.clone().unwrap())
                .or_insert(0usize) += 1;
        }
        for b in eval {
            assert!(counts[b.error_code.as_ref().unwrap()] > 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bundle per error code")]
    fn too_few_bundles_panics() {
        Corpus::generate(CorpusConfig {
            n_bundles: 100,
            ..CorpusConfig::default()
        });
    }

    #[test]
    fn small_config_generates_quickly() {
        let c = Corpus::generate(CorpusConfig::small(1));
        assert_eq!(c.bundles.len(), 600);
        assert!(c.world.codes.len() < 200);
        assert_eq!(c.world.parts.len(), 31);
    }
}
