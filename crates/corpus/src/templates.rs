//! Report text realization: per-source, per-language sentence templates.
//!
//! The templates encode the information asymmetry the paper measures in
//! Experiment 2 (§5.3.2): "Mechanic reports tend to be poor in detail,
//! focused on superficial problem description and often error-riddled ...
//! whereas supplier reports tend to contain more detail and include
//! descriptions of potential causes." Mechanic templates therefore carry
//! customer hearsay and generic complaints; supplier templates name the
//! precise component, symptoms, code-specific jargon and a cause hypothesis.

use rand::rngs::StdRng;
use rand::Rng;

use qatk_taxonomy::concept::Lang;

/// Pick one element of a slice.
fn pick<'a, R: Rng + ?Sized>(rng: &mut R, options: &[&'a str]) -> &'a str {
    options[rng.random_range(0..options.len())]
}

/// Inputs for one report realization.
#[derive(Debug, Clone)]
pub struct ReportContext {
    /// Surface form of the component (in the report's language when possible).
    pub component: String,
    /// Surface forms of the symptoms, primary first.
    pub symptoms: Vec<String>,
    /// Code-specific jargon tokens.
    pub vocab: Vec<String>,
    /// A location surface form.
    pub location: String,
    /// A solution surface form.
    pub solution: String,
    /// A *generic/wrong* symptom surface form (what the customer reported).
    pub generic_symptom: String,
}

/// Mechanic report: short, vague, customer-voice; little specific signal.
/// `mention_true_symptom` controls whether the real primary symptom appears
/// at all (the knob that puts mechanic-only classification below the
/// frequency baseline).
pub fn mechanic_report(
    ctx: &ReportContext,
    lang: Lang,
    mention_true_symptom: bool,
    mention_component: bool,
    rng: &mut StdRng,
) -> String {
    let symptom = if mention_true_symptom {
        ctx.symptoms[0].as_str()
    } else {
        ctx.generic_symptom.as_str()
    };
    let mut sentences: Vec<String> = Vec::new();
    match lang {
        Lang::En => {
            let opener = pick(
                rng,
                &[
                    "customer says",
                    "client reports",
                    "owner complains",
                    "customer states",
                    "driver reports",
                ],
            );
            let complaint = pick(
                rng,
                &[
                    "does not work properly",
                    "acts up from time to time",
                    "failed on the road",
                    "stopped working",
                    "makes trouble since last week",
                    "is faulty",
                ],
            );
            if mention_component {
                sentences.push(format!("{opener} that the {} {complaint}.", ctx.component));
            } else {
                sentences.push(format!("{opener} the part {complaint}."));
            }
            if rng.random_bool(0.55) {
                sentences.push(format!("{} noticed.", ctx.generic_symptom));
            }
            if rng.random_bool(0.5) {
                sentences.push(format!("{symptom} near {}.", ctx.location));
            }
            if rng.random_bool(0.25) {
                sentences.push(
                    pick(
                        rng,
                        &[
                            "could not check further in the shop.",
                            "removed and sent in for evaluation.",
                            "please check under warranty.",
                            "happens only sometimes.",
                        ],
                    )
                    .to_owned(),
                );
            }
        }
        Lang::De => {
            let opener = pick(
                rng,
                &[
                    "kunde sagt",
                    "kunde beanstandet",
                    "fahrer meldet",
                    "kunde reklamiert",
                ],
            );
            let complaint = pick(
                rng,
                &[
                    "geht nicht richtig",
                    "fällt ab und zu aus",
                    "hat versagt",
                    "macht probleme",
                    "ist auffällig",
                ],
            );
            if mention_component {
                sentences.push(format!("{opener} {} {complaint}.", ctx.component));
            } else {
                sentences.push(format!("{opener} teil {complaint}."));
            }
            if rng.random_bool(0.55) {
                sentences.push(format!("{} festgestellt.", ctx.generic_symptom));
            }
            if rng.random_bool(0.5) {
                sentences.push(format!("{symptom} im bereich {}.", ctx.location));
            }
            if rng.random_bool(0.25) {
                sentences.push(
                    pick(
                        rng,
                        &[
                            "in der werkstatt nicht weiter prüfbar.",
                            "ausgebaut und eingeschickt.",
                            "bitte auf garantie prüfen.",
                            "tritt nur sporadisch auf.",
                        ],
                    )
                    .to_owned(),
                );
            }
        }
    }
    sentences.join(" ")
}

/// Initial OEM report: terse triage note.
pub fn initial_report(ctx: &ReportContext, lang: Lang, rng: &mut StdRng) -> String {
    let test_no = rng.random_range(100..999);
    match lang {
        Lang::En => format!(
            "id test {test_no}, {}, sending on to supplier. {} to verify.",
            pick(
                rng,
                &["no clear results", "inconclusive", "symptom confirmed"]
            ),
            ctx.component
        ),
        Lang::De => format!(
            "id test {test_no}, {}, weiter an lieferant. {} zu prüfen.",
            pick(
                rng,
                &[
                    "kein klares ergebnis",
                    "nicht eindeutig",
                    "symptom bestätigt"
                ]
            ),
            ctx.component
        ),
    }
}

/// Supplier report: detailed, precise, cause hypothesis, jargon-rich.
pub fn supplier_report(ctx: &ReportContext, lang: Lang, rng: &mut StdRng) -> String {
    let mut sentences: Vec<String> = Vec::new();
    let v0 = ctx.vocab.first().map(String::as_str).unwrap_or("spec");
    let v1 = ctx.vocab.get(1).map(String::as_str).unwrap_or(v0);
    match lang {
        Lang::En => {
            sentences.push(format!(
                "Unit received, {} inspected according to {v0}.",
                ctx.component
            ));
            for s in &ctx.symptoms {
                sentences.push(format!(
                    "{} {} at {}.",
                    pick(rng, &["Found", "Confirmed", "Measured", "Detected"]),
                    s,
                    ctx.component
                ));
            }
            sentences.push(format!(
                "Root cause {} per analysis {v1}, reference value {} exceeded.",
                pick(rng, &["confirmed", "suspected", "established"]),
                rng.random_range(10..500)
            ));
            sentences.push(format!(
                "Disassembly of the {} shows {} traces near {}.",
                ctx.component, ctx.symptoms[0], ctx.location
            ));
            if ctx.vocab.len() > 2 {
                sentences.push(format!(
                    "Measured parameters {} recorded.",
                    ctx.vocab[2..].join(" ")
                ));
            }
            if rng.random_bool(0.6) {
                sentences.push(format!(
                    "Affected area {}, {} of the {} recommended.",
                    ctx.location, ctx.solution, ctx.component
                ));
            }
        }
        Lang::De => {
            sentences.push(format!(
                "Einheit eingegangen, {} geprüft nach {v0}.",
                ctx.component
            ));
            for s in &ctx.symptoms {
                sentences.push(format!(
                    "{} {} am {}.",
                    pick(rng, &["Befund", "Bestätigt", "Gemessen", "Festgestellt"]),
                    s,
                    ctx.component
                ));
            }
            sentences.push(format!(
                "Ursache {} laut analyse {v1}, grenzwert {} überschritten.",
                pick(rng, &["bestätigt", "vermutet", "nachgewiesen"]),
                rng.random_range(10..500)
            ));
            sentences.push(format!(
                "Zerlegung {} zeigt {} spuren im bereich {}.",
                ctx.component, ctx.symptoms[0], ctx.location
            ));
            if ctx.vocab.len() > 2 {
                sentences.push(format!(
                    "Messwerte {} protokolliert.",
                    ctx.vocab[2..].join(" ")
                ));
            }
            if rng.random_bool(0.6) {
                sentences.push(format!(
                    "Betroffener bereich {}, {} am {} empfohlen.",
                    ctx.location, ctx.solution, ctx.component
                ));
            }
        }
    }
    sentences.join(" ")
}

/// Final OEM report: closing summary, written when the code is assigned.
pub fn final_report(ctx: &ReportContext, lang: Lang, rng: &mut StdRng) -> String {
    let v = ctx.vocab.last().map(String::as_str).unwrap_or("spec");
    match lang {
        Lang::En => format!(
            "Evaluation closed: {} at {}, {v} applies. Part {}.",
            ctx.symptoms[0],
            ctx.component,
            pick(rng, &["scrapped", "returned", "archived"])
        ),
        Lang::De => format!(
            "Bewertung abgeschlossen: {} am {}, {v} zutreffend. Teil {}.",
            ctx.symptoms[0],
            ctx.component,
            pick(rng, &["verschrottet", "zurückgesandt", "archiviert"])
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> ReportContext {
        ReportContext {
            component: "cooling fan".into(),
            symptoms: vec!["burnt through".into(), "no power".into()],
            vocab: vec!["schmorka-47".into(), "trolibe".into()],
            location: "engine bay".into(),
            solution: "replaced".into(),
            generic_symptom: "noise".into(),
        }
    }

    #[test]
    fn mechanic_vague_by_default() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = mechanic_report(&ctx(), Lang::En, false, false, &mut rng);
        assert!(!r.contains("cooling fan"));
        assert!(!r.contains("burnt through"));
        assert!(r.contains("noise"));
        assert!(r.split_whitespace().count() >= 6);
    }

    #[test]
    fn mechanic_can_mention_truth() {
        // with symptom+component enabled, eventually both appear
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_comp = false;
        let mut saw_sym = false;
        for _ in 0..30 {
            let r = mechanic_report(&ctx(), Lang::En, true, true, &mut rng);
            saw_comp |= r.contains("cooling fan");
            saw_sym |= r.contains("burnt through");
        }
        assert!(saw_comp && saw_sym);
    }

    #[test]
    fn supplier_contains_specifics() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = supplier_report(&ctx(), Lang::En, &mut rng);
        assert!(r.contains("cooling fan"));
        assert!(r.contains("burnt through"));
        assert!(r.contains("no power"));
        assert!(r.contains("schmorka-47"));
        assert!(r.split_whitespace().count() >= 20);
    }

    #[test]
    fn german_variants() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = mechanic_report(&ctx(), Lang::De, false, true, &mut rng);
        assert!(m.contains("cooling fan")); // surface form is caller-provided
        let s = supplier_report(&ctx(), Lang::De, &mut rng);
        assert!(s.contains("geprüft") || s.contains("Einheit"));
        let i = initial_report(&ctx(), Lang::De, &mut rng);
        assert!(i.contains("id test"));
        let f = final_report(&ctx(), Lang::De, &mut rng);
        assert!(f.contains("abgeschlossen"));
    }

    #[test]
    fn initial_and_final_are_short() {
        let mut rng = StdRng::seed_from_u64(5);
        let i = initial_report(&ctx(), Lang::En, &mut rng);
        assert!(i.split_whitespace().count() <= 16);
        let f = final_report(&ctx(), Lang::En, &mut rng);
        assert!(f.split_whitespace().count() <= 16);
        assert!(f.contains("trolibe")); // vocab reference
    }

    #[test]
    fn deterministic() {
        let a = supplier_report(&ctx(), Lang::En, &mut StdRng::seed_from_u64(9));
        let b = supplier_report(&ctx(), Lang::En, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
