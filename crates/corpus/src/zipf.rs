//! Zipf-distributed sampling, implemented from scratch.
//!
//! Real error-code frequencies are heavily skewed — the paper's frequency
//! baseline reaches 35 % accuracy@1 just by picking the most common code for
//! a part ID (§5.1). A Zipf law over each part ID's code pool reproduces that
//! skew; the exponent `s` is the calibration knob.

use rand::Rng;

/// A sampler over ranks `0..n` with probability ∝ 1/(rank+1)^s.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; last element is the total mass.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is not finite — both are construction-time
    /// programming errors.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Probability of a rank (0-based).
    pub fn probability(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - prev) / total
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0.0..total);
        // first index whose cumulative weight exceeds x
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(50, 1.5);
        let sum: f64 = (0..50).map(|k| z.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(40, 1.5);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(10));
        // exponent 1.5 over 40 ranks gives a top share near the paper's 35 %
        let p0 = z.probability(0);
        assert!((0.25..0.55).contains(&p0), "p0 = {p0}");
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_follow_distribution() {
        let z = Zipf::new(20, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 20];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 10] {
            let expected = z.probability(k) * n as f64;
            let got = counts[k] as f64;
            assert!(
                (got - expected).abs() < expected * 0.1 + 30.0,
                "rank {k}: expected ~{expected}, got {got}"
            );
        }
        // every rank reachable
        assert!(counts[19] > 0);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.probability(0) - 1.0).abs() < 1e-12);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
