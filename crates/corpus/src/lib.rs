//! # qatk-corpus — the calibrated synthetic "messy data" corpus
//!
//! The paper's data — 7 500 anonymized data bundles of damaged-car-part
//! reports from a large automotive OEM — is proprietary. This crate is the
//! substitution (documented in DESIGN.md): a seeded generator whose output
//! matches every population statistic §3.2 reports and, crucially, the
//! *information asymmetry between report sources* that drives Experiment 2:
//! mechanic reports are vague, error-riddled customer hearsay; supplier
//! reports are detailed, jargon-rich fault analyses.
//!
//! * [`bundle`] — the [`bundle::DataBundle`] model, CAS construction and the
//!   train/test/per-source text selections;
//! * [`faults`] — the latent fault world: part IDs, error-code pools shaped
//!   to the paper's statistics, code-specific vocabulary;
//! * [`templates`] + [`messy`] — report realization and the messiness
//!   channel (typos, OEM abbreviations, case noise);
//! * [`zipf`] — from-scratch Zipf sampling for the code skew;
//! * [`generator`] — the [`generator::Corpus`] generator;
//! * [`stats`] — recomputation of the §3.2 statistics;
//! * [`scale`] — million-bundle synthetic tiers (100k/1M/10M) generated
//!   straight at the feature level for scale benchmarking;
//! * [`loader`] — persistence into the relational store;
//! * [`nhtsa`] — synthetic ODI consumer complaints for the §5.4 comparison.

pub mod bundle;
pub mod faults;
pub mod generator;
pub mod loader;
pub mod messy;
pub mod nhtsa;
pub mod scale;
pub mod stats;
pub mod templates;
pub mod zipf;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bundle::{DataBundle, ReportSource, SourceSelection};
    pub use crate::faults::{ErrorCodeDef, FaultWorld, PartIdDef, POOL_SIZES};
    pub use crate::generator::{Corpus, CorpusConfig};
    pub use crate::loader::{
        create_schema, load_bundles, load_bundles_for_part, save_corpus, tables,
    };
    pub use crate::messy::{messify, MessyConfig};
    pub use crate::nhtsa::{
        category_for, complaint_schema, complaints_from_csv, complaints_to_csv,
        generate_complaints, Complaint, NhtsaConfig,
    };
    pub use crate::scale::{ScaleBundle, ScaleConfig, ScaleCorpus, ScaleTier};
    pub use crate::stats::CorpusStats;
    pub use crate::zipf::Zipf;
}

pub use prelude::*;
