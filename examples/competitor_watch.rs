//! Competitive business intelligence (paper §5.4): classify public
//! consumer complaints with the internal knowledge base and compare error
//! distributions across data sources.
//!
//! Run: `cargo run --example competitor_watch`

use quest_qatk::prelude::*;

fn main() {
    println!("generating internal corpus ...");
    let corpus = Corpus::generate(CorpusConfig::small(11));

    println!("generating synthetic NHTSA ODI complaints ...");
    let complaints = generate_complaints(
        &corpus,
        &NhtsaConfig {
            n_complaints: 400,
            ..NhtsaConfig::default()
        },
    );
    println!("  sample complaint: {}", complaints[0].text);
    println!(
        "  ({} {} {}, category {})",
        complaints[0].year,
        complaints[0].make,
        complaints[0].model,
        complaints[0].component_category
    );

    // Bag-of-concepts is the cross-source model: multilingual, text-type
    // independent (§5.4).
    println!("\ntraining bag-of-concepts service ...");
    let service = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );

    let internal = corpus.bundles.iter().filter_map(|b| b.error_code.clone());
    let report = compare_with_complaints(&service, internal, &complaints, 3);

    println!("\nerror-code distribution, top 3 + Other (Fig. 14 screen):\n");
    print!("{}", report.render());

    if report.left.top_code() != report.right.top_code() {
        println!(
            "\n→ the public market shows a different leading failure than our warranty data —"
        );
        println!("  exactly the kind of brand-specific weakness §5.4 wants surfaced.");
    }
}
