//! Taxonomy maintenance: the workflow the paper's legacy "editor GUI for
//! adding, changing and removing taxonomy concepts" supported (§4.5.3), plus
//! the §6 future-work item "enhancing the domain-specific taxonomy" — here
//! as code: load from XML, inspect coverage, add missing synonyms, run the
//! substring synonym expansion, and save back.
//!
//! Run: `cargo run --example taxonomy_maintenance`

use quest_qatk::prelude::*;

fn main() {
    // start from the synthetic paper-scale resource and persist it as XML,
    // like the file the OEM's taxonomy team maintains
    let syn = SyntheticTaxonomy::generate(1);
    let dir = std::env::temp_dir().join("quest_qatk_taxonomy");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("automotive.xml");
    std::fs::write(&path, write_taxonomy(&syn.taxonomy)).unwrap();
    println!(
        "wrote {} ({} concepts, {} DE / {} EN leaves)",
        path.display(),
        syn.taxonomy.len(),
        syn.taxonomy.concept_count(Lang::De),
        syn.taxonomy.concept_count(Lang::En)
    );

    // reload and check coverage on a report the annotator cannot fully read
    let tax = parse_taxonomy(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let report = "customer says the head-end unit makes a swooshing sound";
    let mentions = annotate_count(&tax, report);
    println!("\nreport: {report}\nmentions found: {mentions}");

    // a taxonomy worker adds the missing synonyms on top of the loaded tree
    let mut builder = TaxonomyBuilder::new(tax.name());
    let mut id_map = std::collections::HashMap::new();
    for c in tax.concepts() {
        let new_id = match c.parent {
            Some(p) => builder.child(id_map[&p], c.name.clone()),
            None => builder.root(c.kind, c.name.clone()),
        };
        for t in &c.terms {
            builder.term(new_id, t.lang, t.text.clone());
        }
        id_map.insert(c.id, new_id);
    }
    // find the Radio concept and enrich it
    let radio = tax
        .concepts()
        .iter()
        .find(|c| c.name == "Radio")
        .expect("synthetic taxonomy has a Radio concept");
    builder.term(id_map[&radio.id], Lang::En, "head-end unit");
    let swoosh = builder.root(ConceptKind::Symptom, "Swoosh");
    builder.term(swoosh, Lang::En, "swooshing sound");
    builder.term(swoosh, Lang::De, "rauschen");
    let enriched = builder.build().unwrap();

    let mentions = annotate_count(&enriched, report);
    println!("after adding synonyms: {mentions}");

    // run the §4.5.3 substring synonym expansion and save the result
    let (expanded, stats) = expand_taxonomy(&enriched, &ExpansionConfig::default()).unwrap();
    println!(
        "\nsynonym expansion: {} original terms, {} generated",
        stats.original_terms, stats.added_terms
    );
    let out = dir.join("automotive_v2.xml");
    std::fs::write(&out, write_taxonomy(&expanded)).unwrap();
    println!("saved {}", out.display());

    // the new file round-trips
    let reloaded = parse_taxonomy(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(reloaded, expanded);
    println!("round-trip verified ({} concepts)", reloaded.len());
}

fn annotate_count(tax: &Taxonomy, text: &str) -> usize {
    let mut cas = Cas::new();
    cas.add_segment("report", text);
    let pipeline = Pipeline::builder()
        .add(WhitespaceTokenizer::new())
        .add(ConceptAnnotator::new(tax))
        .build();
    pipeline.process(&mut cas).unwrap();
    cas.concept_mentions().count()
}
