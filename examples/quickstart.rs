//! Quickstart: generate a corpus, train the recommender, get suggestions.
//!
//! Run: `cargo run --example quickstart`

use quest_qatk::prelude::*;

fn main() {
    // A small corpus with the paper's structure: 31 part IDs, Zipf-skewed
    // error codes, messy multilingual reports.
    println!("generating corpus ...");
    let corpus = Corpus::generate(CorpusConfig::small(42));
    println!(
        "  {} bundles, {} part IDs, {} error codes",
        corpus.bundles.len(),
        corpus.world.parts.len(),
        corpus.world.codes.len()
    );

    // Train the domain-specific (bag-of-concepts) recommendation service.
    println!("training recommendation service ...");
    let service = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    println!(
        "  knowledge base: {} configuration instances",
        service.kb_len()
    );

    // Ask for suggestions for one data bundle, as the QUEST screen would.
    let bundle = &corpus.bundles[17];
    println!(
        "\nbundle {} (part {})",
        bundle.reference_number, bundle.part_id
    );
    println!("  mechanic: {}", bundle.mechanic_report);
    println!("  supplier: {}", bundle.supplier_report);

    let suggestions = service.suggest(bundle);
    println!("\ntop error-code suggestions:");
    for (i, s) in suggestions.top.iter().enumerate() {
        println!("  {:>2}. {:<8} score {:.3}", i + 1, s.code, s.score);
    }
    println!(
        "fallback list: {} codes available for part {}",
        suggestions.all_codes_for_part.len(),
        bundle.part_id
    );
    if let Some(truth) = bundle.error_code.as_deref() {
        let rank = suggestions.top.iter().position(|s| s.code == truth);
        match rank {
            Some(r) => println!("ground truth {truth} is suggestion #{}", r + 1),
            None => {
                println!("ground truth {truth} not in the top-10 (worker uses the fallback list)")
            }
        }
    }
}
