//! Warranty triage: the paper's motivating scenario end to end.
//!
//! A damaged car part travels through the Fig. 2 process — mechanic report,
//! optional OEM triage, supplier assessment — and a quality expert closes
//! the case with an error code picked from QUEST's ranked suggestions.
//! Everything is persisted in the embedded relational store.
//!
//! Run: `cargo run --example warranty_triage`

use quest_qatk::prelude::*;

fn main() {
    let corpus = Corpus::generate(CorpusConfig::small(7));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).expect("schema is fresh");

    // people
    let mut users = UserRegistry::new();
    users.add("anna", Role::QualityExpert).unwrap();
    users.add("root", Role::Admin).unwrap();
    users.add("intern", Role::Viewer).unwrap();

    // the recommender, trained on the historical corpus
    let service = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );

    // a fresh damaged part arrives: drive the evaluation workflow
    let incoming = corpus.bundles[3].clone();
    let mut case = EvaluationCase::register("R-NEW-001", incoming.part_id.clone(), "system");
    case.add_mechanic_report("shop-117", &incoming.mechanic_report)
        .unwrap();
    println!("[{}] mechanic report filed", case.stage());
    if let Some(initial) = &incoming.initial_report {
        case.add_initial_report("oem-triage", initial).unwrap();
        println!("[{}] initial OEM assessment", case.stage());
    }
    case.add_supplier_report("supplier-a", &incoming.supplier_report, "RC-2")
        .unwrap();
    println!(
        "[{}] supplier assessment, responsibility RC-2",
        case.stage()
    );

    // QUEST suggests codes; the viewer may look but not assign
    let suggestions = service.suggest(&incoming);
    println!("\ntop-{} suggestions:", suggestions.top.len());
    for (i, s) in suggestions.top.iter().take(5).enumerate() {
        println!("  {:>2}. {:<8} score {:.3}", i + 1, s.code, s.score);
    }
    service
        .persist_suggestions(&mut db, &suggestions)
        .expect("suggestions persist");

    let chosen = suggestions.top[0].code.clone();
    let denied = service.assign(&mut db, &users, "intern", &incoming, &chosen);
    println!("\nintern tries to assign: {}", denied.unwrap_err());

    service
        .assign(&mut db, &users, "anna", &incoming, &chosen)
        .expect("anna may assign");
    case.finalize("anna", &chosen, "per supplier findings")
        .unwrap();
    println!("anna assigned {chosen}; case is {}", case.stage());

    println!("\naudit trail:");
    for e in case.audit_trail() {
        println!(
            "  {:<20} by {:<12} — {}",
            e.stage.to_string(),
            e.actor,
            e.note
        );
    }
    println!(
        "\nstore now holds {} tables, {} rows",
        db.table_names().len(),
        db.total_rows()
    );
}
