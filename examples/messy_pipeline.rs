//! A tour of the text-analytics substrate on one messy report: CAS,
//! tokenizer, language detection, stopwords, and the optimized-vs-legacy
//! concept annotators (paper §4.5).
//!
//! Run: `cargo run --example messy_pipeline`

use quest_qatk::prelude::*;

fn main() {
    // The taxonomy: synthetic stand-in for the paper's legacy resource.
    let syn = SyntheticTaxonomy::generate(1);
    let tax = &syn.taxonomy;
    println!(
        "taxonomy: {} concepts ({} German / {} English leaf concepts)",
        tax.len(),
        tax.concept_count(Lang::De),
        tax.concept_count(Lang::En)
    );

    // …and it round-trips through its custom XML format.
    let xml = write_taxonomy(tax);
    let parsed = parse_taxonomy(&xml).unwrap();
    assert_eq!(&parsed, tax);
    println!("custom XML format round-trip: ok ({} bytes)", xml.len());

    // One messy data bundle, like the paper's Fig. 3 example.
    let mut cas = Cas::new();
    cas.add_segment(
        "mechanic_report",
        "Kleint says taht radio turns on and off by itself. Electiral smell, crackling sound.",
    );
    cas.add_segment(
        "supplier_report",
        "Unit non-functional. LÜFTER funktioniert nicht. Kontakt defekt, durchgeschmort.",
    );
    cas.part_id = Some("P-07".into());

    let pipeline = Pipeline::builder()
        .add(WhitespaceTokenizer::new())
        .add(LanguageDetector::new())
        .add(StopwordAnnotator::new())
        .add(ConceptAnnotator::new(tax))
        .build();
    pipeline.process(&mut cas).unwrap();

    println!("\ntokens: {}", cas.tokens().count());
    for seg in cas.segments() {
        println!(
            "segment {:<18} language: {:?}",
            seg.name,
            cas.language_of(seg.id).unwrap()
        );
    }
    println!("stopwords marked: {}", cas.stopword_spans().len());

    println!("\nconcept mentions (optimized trie annotator):");
    for (ann, concept, kind) in cas.concept_mentions() {
        println!(
            "  {:<24} -> {} ({kind}) [{}]",
            format!("{:?}", cas.covered_text(ann)),
            tax.get(concept).unwrap().name,
            concept
        );
    }

    // The legacy annotator on the same text: case-sensitive, single-word,
    // German-only — watch it miss almost everything.
    let mut legacy_cas = Cas::new();
    legacy_cas.add_segment(
        "supplier_report",
        "Unit non-functional. LÜFTER funktioniert nicht. Kontakt defekt, durchgeschmort.",
    );
    WhitespaceTokenizer::new().process(&mut legacy_cas).unwrap();
    LegacyAnnotator::new(tax, Lang::De)
        .process(&mut legacy_cas)
        .unwrap();
    println!(
        "\nlegacy annotator on the supplier report: {} mentions (optimized found {})",
        legacy_cas.concept_mentions().count(),
        cas.concept_mentions()
            .filter(|(a, _, _)| cas
                .segment_at(a.begin)
                .is_some_and(|s| s.name == "supplier_report"))
            .count()
    );
}
