//! Offline stand-in for `criterion`: a minimal timing harness with the same
//! surface the workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros). It reports mean wall-clock time per iteration
//! on stdout — no statistics, plots, or baselines.
//!
//! When run without the `--bench` argument (i.e. under `cargo test`), each
//! benchmark body executes a single iteration as a smoke test, mirroring
//! criterion's test mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
pub struct Criterion {
    /// True when invoked by `cargo bench` (measure); false under
    /// `cargo test` (single-iteration smoke run).
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measure: self.measure,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measure = self.measure;
        run_one("", &id.to_string(), 10, measure, f);
        self
    }
}

/// Identifier `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measure: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measure,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measure,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, samples: usize, measure: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        measure,
        samples,
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if measure {
        println!(
            "bench: {label:<50} {:>12.1} ns/iter ({} iters)",
            b.mean.as_nanos() as f64,
            b.iters
        );
    } else {
        println!("bench (smoke): {label}");
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    measure: bool,
    samples: usize,
    mean: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            self.iters = 1;
            return;
        }
        // warm-up + calibration: find an iteration count that runs ~10ms
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            total += t.elapsed();
            iters += per_sample;
        }
        self.mean = total / iters.max(1) as u32;
        self.iters = iters;
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
