//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small subset of the rand 0.9 API it actually uses: `StdRng` (seedable,
//! deterministic), the `Rng` extension methods `random_range` /
//! `random_bool` / `random`, and `seq::SliceRandom::shuffle`. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed across platforms, which is all the corpus generator and the
//! evaluation harness rely on.

pub mod rngs;
pub mod seq;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform over the whole
/// domain; `[0, 1)` for floats).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128).wrapping_sub(s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((s as i128) + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing extension methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }

    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(0.0..3.0);
            assert!((0.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
