//! Generation of strings matching a small regex subset.
//!
//! Supported syntax (everything the workspace's patterns use):
//! character classes `[a-zA-Z0-9 .,;-]` (ranges + literals, `-` literal when
//! first/last), groups `( ... )`, quantifiers `{n}`, `{n,m}`, `*`, `+`, `?`,
//! escaped characters, and literal characters. No alternation, anchors, or
//! negated classes.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<(Node, Quant)>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const UNBOUNDED_CAP: u32 = 8;

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_seq(&mut self, in_group: bool) -> Vec<(Node, Quant)> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' && in_group {
                break;
            }
            let node = self.parse_atom();
            let quant = self.parse_quant();
            items.push((node, quant));
        }
        items
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump().expect("atom expected") {
            '[' => self.parse_class(),
            '(' => {
                let inner = self.parse_seq(true);
                assert_eq!(self.bump(), Some(')'), "unterminated group");
                Node::Group(inner)
            }
            '\\' => Node::Literal(self.bump().expect("dangling escape")),
            c => Node::Literal(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = self.bump().expect("unterminated character class");
            match c {
                ']' => break,
                '\\' => {
                    let lit = self.bump().expect("dangling escape in class");
                    if let Some(p) = prev.take() {
                        ranges.push((p, p));
                    }
                    prev = Some(lit);
                }
                '-' if prev.is_some() && self.peek().is_some_and(|n| n != ']') => {
                    let lo = prev.take().unwrap();
                    let hi = self.bump().unwrap();
                    assert!(lo <= hi, "invalid class range {lo}-{hi}");
                    ranges.push((lo, hi));
                }
                _ => {
                    if let Some(p) = prev.take() {
                        ranges.push((p, p));
                    }
                    prev = Some(c);
                }
            }
        }
        if let Some(p) = prev {
            ranges.push((p, p));
        }
        assert!(!ranges.is_empty(), "empty character class");
        Node::Class(ranges)
    }

    fn parse_quant(&mut self) -> Quant {
        match self.peek() {
            Some('{') => {
                self.bump();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                loop {
                    match self.bump().expect("unterminated quantifier") {
                        '}' => break,
                        ',' => in_max = true,
                        d => {
                            if in_max {
                                max.push(d);
                            } else {
                                min.push(d);
                            }
                        }
                    }
                }
                let lo: u32 = min.parse().expect("quantifier lower bound");
                let hi: u32 = if !in_max {
                    lo
                } else {
                    max.parse().expect("quantifier upper bound")
                };
                Quant { min: lo, max: hi }
            }
            Some('*') => {
                self.bump();
                Quant {
                    min: 0,
                    max: UNBOUNDED_CAP,
                }
            }
            Some('+') => {
                self.bump();
                Quant {
                    min: 1,
                    max: UNBOUNDED_CAP,
                }
            }
            Some('?') => {
                self.bump();
                Quant { min: 0, max: 1 }
            }
            _ => Quant { min: 1, max: 1 },
        }
    }
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.random_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).expect("valid class char"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick out of bounds");
        }
        Node::Group(items) => emit_seq(items, rng, out),
    }
}

fn emit_seq(items: &[(Node, Quant)], rng: &mut StdRng, out: &mut String) {
    for (node, quant) in items {
        let n = rng.random_range(quant.min..=quant.max);
        for _ in 0..n {
            emit(node, rng, out);
        }
    }
}

/// Generate a random string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let items = parser.parse_seq(false);
    assert_eq!(parser.pos, parser.chars.len(), "trailing pattern input");
    let mut out = String::new();
    emit_seq(&items, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen100(pattern: &str) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..100)
            .map(|_| generate_matching(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn class_with_quantifier() {
        for s in gen100("[a-z]{1,8}") {
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn class_with_literals_and_trailing_dash() {
        for s in gen100("[a-zA-Z0-9 .,;-]{0,40}") {
            assert!(s.chars().count() <= 40);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || " .,;-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn unicode_class_members() {
        let all: String = gen100("[äöüß]{4}").concat();
        assert!(all.chars().all(|c| "äöüß".contains(c)));
    }

    #[test]
    fn group_with_quantifier() {
        for s in gen100("[a-z]{1,8}( [a-z]{1,8}){0,2}") {
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{s:?}");
            for w in words {
                assert!((1..=8).contains(&w.len()), "{s:?}");
                assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn exact_count_and_star_plus_question() {
        for s in gen100("[ab]{3}") {
            assert_eq!(s.len(), 3);
        }
        for s in gen100("x[yz]*") {
            assert!(s.starts_with('x') && s.len() <= 1 + UNBOUNDED_CAP as usize);
        }
        for s in gen100("a?b+") {
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'), "{s:?}");
            assert!(s.contains('b'));
        }
    }

    #[test]
    fn escapes_are_literal() {
        for s in gen100(r"[a\-b]{2}\[") {
            assert!(s.ends_with('['), "{s:?}");
            assert!(s[..s.len() - 1].chars().all(|c| "a-b".contains(c)), "{s:?}");
        }
    }
}
