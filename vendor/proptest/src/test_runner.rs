//! Test-runner configuration and the failure-reporting guard used by the
//! `proptest!` macro expansion.

/// Runner configuration. Only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over a test name — the per-test RNG base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mix a case index into the base seed.
pub fn mix(base: u64, case: u32) -> u64 {
    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Prints the failing case number and seed when a property body panics, so
/// the case can be replayed (this shim does not shrink).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest (vendored shim): property '{}' failed at case {} (rng seed {:#018x})",
                self.name, self.case, self.seed
            );
        }
    }
}
