//! Collection strategies.

use std::collections::HashSet;
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Size specification accepted by [`vec`] and [`hash_set`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.random_range(self.min..self.max)
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// `Vec` of values from an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashSet` of values from an element strategy. Duplicates are retried a
/// bounded number of times, so tight element domains may produce fewer than
/// the sampled size (but never fewer than possible).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        let mut misses = 0usize;
        while out.len() < n && misses < 100 {
            if !out.insert(self.element.generate(rng)) {
                misses += 1;
            }
        }
        out
    }
}
