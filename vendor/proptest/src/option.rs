//! `Option` strategies.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// `Some(value)` with probability 0.75, `None` otherwise (matching real
/// proptest's default weighting of 3:1 in favour of `Some`).
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { element }
}

pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        if rng.random_bool(0.75) {
            Some(self.element.generate(rng))
        } else {
            None
        }
    }
}
