//! The `Strategy` trait and core combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values. Object-safe: the combinators are `Sized`-
/// gated so `Box<dyn Strategy<Value = T>>` works (used by `prop_oneof!`).
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing a predicate (regenerates; no shrinking).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f: Box::new(f),
        }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Helper used by `prop_oneof!` to erase arm types while letting inference
/// unify the common value type.
pub fn arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Uniform choice among erased strategies.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always the same (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` output.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` output.
pub struct Filter<S: Strategy> {
    inner: S,
    whence: String,
    f: Box<dyn Fn(&S::Value) -> bool>,
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any` can produce.
pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // finite, wide-ranged: mantissa in [0,1) scaled by a signed power
        let unit: f64 = rng.random();
        let exp = rng.random_range(-64i32..64) as f64;
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * unit * exp.exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // printable ASCII keeps downstream text code exercised without
        // surrogate-range complications
        rng.random_range(0x20u32..0x7f) as u8 as char
    }
}

// --- ranges as strategies --------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

// --- string patterns as strategies ----------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
