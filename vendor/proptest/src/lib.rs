//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the proptest 1.x API its property tests use: the `proptest!`
//! macro, `Strategy` with `prop_map` / `prop_filter`, `any::<T>()`, numeric
//! range strategies, regex-subset string strategies, `collection::{vec,
//! hash_set}`, `option::of`, `Just`, `prop_oneof!`, and `ProptestConfig`.
//!
//! Differences from real proptest, by design:
//! * cases are generated from a deterministic per-test RNG (FNV-1a of the
//!   test name mixed with the case index) — runs are reproducible without a
//!   persistence file, and `*.proptest-regressions` files are ignored;
//! * no shrinking — on failure the case number and seed are reported so the
//!   case can be replayed, but the inputs are not minimized;
//! * `prop_assert!` maps to `assert!` (panics instead of returning `Err`);
//!   test bodies still run inside a `Result`-returning closure, so the real
//!   proptest idiom `return Ok(());` for early case rejection works.

#![allow(clippy::type_complexity)]

// Re-exported so `proptest!` can reach the RNG via `$crate::rand` from
// crates that do not themselves depend on `rand`.
pub use rand;

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-definition macro. Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in vec(any::<u8>(), 0..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::test_runner::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let seed = $crate::test_runner::mix(base, case);
                    let mut __rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            seed,
                        );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    let mut __guard =
                        $crate::test_runner::CaseGuard::new(stringify!($name), case, seed);
                    // real proptest bodies may `return Ok(());` to reject a
                    // case early — give them a Result-typed scope to do it in
                    let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case rejected with error: {e}");
                    }
                    __guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion macros; panic directly in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among heterogeneous strategies with a common value type.
/// Weights (`w => strategy`) are accepted and ignored (choice stays uniform).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::arm($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::arm($strat)),+])
    };
}
