//! Offline stand-in for the `bytes` crate: the `Buf` / `BufMut` trait subset
//! the store's codec, WAL, and snapshot formats use (`&[u8]` as reader,
//! `Vec<u8>` as writer, little-endian fixed-width integers).

/// Read cursor over a byte slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Append-only writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_i64_le(-12);
        out.put_f64_le(2.5);
        out.put_slice(b"xy");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.get_i64_le(), -12);
        assert_eq!(buf.get_f64_le(), 2.5);
        assert_eq!(buf.remaining(), 2);
        buf.advance(1);
        assert_eq!(buf.chunk(), b"y");
        assert!(buf.has_remaining());
        buf.advance(1);
        assert!(!buf.has_remaining());
    }
}
