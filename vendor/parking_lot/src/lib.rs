//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` locks
//! with parking_lot's poison-free API (`read()` / `write()` / `lock()`
//! return guards directly). A poisoned std lock is recovered rather than
//! propagated, matching parking_lot's behaviour of never poisoning.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::RwLock` look-alike.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::Mutex` look-alike.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
