//! Cross-crate invariants of the experiment machinery at test scale: curve
//! monotonicity, determinism, baseline relationships, and source-selection
//! effects. (Paper-*value* reproduction runs at full scale via the
//! qatk-bench harness binaries; see EXPERIMENTS.md.)

use quest_qatk::prelude::*;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_bundles: 1500,
        pool_scale: 0.2,
        ..CorpusConfig::default()
    })
}

fn config(model: FeatureModel, measure: SimilarityMeasure) -> ClassifierConfig {
    ClassifierConfig {
        model,
        measure,
        folds: 5,
        ..ClassifierConfig::default()
    }
}

#[test]
fn accuracy_curves_are_monotone_and_bounded() {
    let c = corpus();
    for model in [FeatureModel::BagOfWords, FeatureModel::BagOfConcepts] {
        let r = run_experiment(&c, &config(model, SimilarityMeasure::Jaccard));
        for curve in [&r.classifier, &r.code_frequency, &r.candidate_set] {
            for w in curve.accuracy.windows(2) {
                assert!(w[1] + 1e-12 >= w[0], "{}: not monotone", curve.label);
            }
            for &a in &curve.accuracy {
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }
}

#[test]
fn classifier_beats_unsorted_candidates_and_frequency_at_k1() {
    let c = corpus();
    let r = run_experiment(
        &c,
        &config(FeatureModel::BagOfWords, SimilarityMeasure::Jaccard),
    );
    let a1 = r.classifier.at(1).unwrap();
    assert!(a1 > r.candidate_set.at(1).unwrap());
    assert!(a1 > r.code_frequency.at(1).unwrap());
}

#[test]
fn mechanic_only_below_frequency_baseline() {
    // the central finding of Experiment 2 (Fig. 12)
    let c = corpus();
    let r = run_experiment(
        &c,
        &ClassifierConfig {
            test_selection: SourceSelection::MechanicOnly,
            ..config(FeatureModel::BagOfWords, SimilarityMeasure::Jaccard)
        },
    );
    assert!(
        r.classifier.at(1).unwrap() < r.code_frequency.at(1).unwrap(),
        "mechanic-only {:.3} should fall below the frequency baseline {:.3}",
        r.classifier.at(1).unwrap(),
        r.code_frequency.at(1).unwrap()
    );
}

#[test]
fn supplier_only_close_to_full_test() {
    // the other half of Experiment 2 (Fig. 13)
    let c = corpus();
    let full = run_experiment(
        &c,
        &config(FeatureModel::BagOfWords, SimilarityMeasure::Jaccard),
    );
    let sr = run_experiment(
        &c,
        &ClassifierConfig {
            test_selection: SourceSelection::SupplierOnly,
            ..config(FeatureModel::BagOfWords, SimilarityMeasure::Jaccard)
        },
    );
    let gap = (full.classifier.at(5).unwrap() - sr.classifier.at(5).unwrap()).abs();
    assert!(
        gap < 0.15,
        "supplier-only should be near full test (gap {gap:.3})"
    );
    assert!(sr.classifier.at(1).unwrap() > sr.code_frequency.at(1).unwrap());
}

#[test]
fn runs_are_deterministic_across_repetition() {
    let c = corpus();
    let cfg = config(FeatureModel::BagOfConcepts, SimilarityMeasure::Overlap);
    let a = run_experiment(&c, &cfg);
    let b = run_experiment(&c, &cfg);
    assert_eq!(a.classifier.accuracy, b.classifier.accuracy);
    assert_eq!(a.candidate_set.accuracy, b.candidate_set.accuracy);
    assert_eq!(a.total_tested, b.total_tested);
}

#[test]
fn extended_measures_also_work() {
    // Dice and cosine are the DESIGN.md ablation extensions
    let c = Corpus::generate(CorpusConfig::small(3));
    for measure in [SimilarityMeasure::Dice, SimilarityMeasure::Cosine] {
        let r = run_experiment(&c, &config(FeatureModel::BagOfConcepts, measure));
        assert!(r.classifier.at(25).unwrap() > 0.5, "{measure:?} broken");
    }
}

#[test]
fn timing_and_kb_stats_reported() {
    let c = Corpus::generate(CorpusConfig::small(5));
    let r = run_experiment(
        &c,
        &config(FeatureModel::BagOfConcepts, SimilarityMeasure::Jaccard),
    );
    assert_eq!(r.fold_seconds.len(), 5);
    assert!(r.fold_seconds.iter().all(|&s| s >= 0.0));
    assert!(r.mean_kb_nodes > 0.0);
    assert!(r.mean_features_per_bundle > 0.0);
    assert!(r.total_tested > 0);
}
