//! End-to-end replication at the application layer: a leader QUEST app
//! ships learns through its WAL, a read-only replica republishes them and
//! serves `/suggest` through the *unchanged* HTTP handler, and after the
//! leader dies the promoted replica still serves every pre-crash acked
//! learn — the PR's acceptance scenario.
//!
//! Protocol-level happy paths live in `tests/repl_replication.rs`, the
//! crash matrix in `tests/repl_crash.rs`; this file proves the quest glue:
//! `save_to_logged` as the publish hook, `ReplicaServer` republication,
//! read-only routing, and the `/healthz` replication fields.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use qatk_core::prelude::*;
use qatk_corpus::prelude::*;
use qatk_repl::prelude::*;
use qatk_serve::http::RequestParser;
use qatk_serve::{Handler, Request};
use qatk_store::prelude::*;
use quest::prelude::*;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qatk_replquest_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn paths_in(dir: &std::path::Path, role: &str) -> ReplPaths {
    let sub = dir.join(role);
    std::fs::create_dir_all(&sub).unwrap();
    ReplPaths::new(sub.join("snap.qdb"), sub.join("wal.log"))
}

fn request(method: &str, path: &str, body: &str) -> Request {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut p = RequestParser::new(Default::default());
    p.push(raw.as_bytes());
    p.take_request().unwrap().unwrap()
}

fn body_str(resp: &qatk_serve::Response) -> String {
    String::from_utf8_lossy(&resp.body).into_owned()
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn promoted_replica_serves_pre_crash_acked_learns_on_suggest() {
    let dir = tmp_dir("promote");
    let leader_paths = paths_in(&dir, "leader");
    let replica_paths = paths_in(&dir, "replica");

    let corpus = Corpus::generate(CorpusConfig::small(31));
    let model = FeatureModel::BagOfWords;
    let pipeline = Arc::new(build_pipeline(&corpus, model));

    // --- leader boot: the `quest serve --db … --wal … --replicate-to` path
    let (mut store, _) = LoggedDatabase::open_with_retention(
        &leader_paths.snapshot,
        &leader_paths.wal,
        SyncPolicy::OsOnly,
        SegmentRetention::Keep(8),
    )
    .unwrap();
    let svc = Arc::new(RecommendationService::train(
        &corpus,
        model,
        SimilarityMeasure::Jaccard,
    ));
    assert!(KnowledgeSnapshot::ensure_replicated_tables(&mut store).unwrap());
    store.checkpoint().unwrap(); // DDL is not logged: bake it into the snapshot
    svc.snapshot().save_to_logged(&mut store).unwrap();

    let leader = Leader::bind(
        "127.0.0.1:0",
        leader_paths.clone(),
        LeaderConfig {
            poll_interval: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .unwrap();
    let leader_addr = leader.local_addr().to_string();

    let shared_store = Arc::new(Mutex::new(store));
    let hook: PublishHook = Arc::new({
        let store = Arc::clone(&shared_store);
        move |svc: &RecommendationService| {
            let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
            svc.snapshot()
                .save_to_logged(&mut store)
                .map_err(|e| e.to_string())
        }
    });
    let leader_app = QuestApp::new(
        Arc::clone(&svc),
        HealthInfo {
            replication: Some(ReplicationHealth::Leader(leader.status())),
            ..Default::default()
        },
    )
    .with_publish_hook(hook);

    // --- replica boot: the `quest replica --follow` path
    let replica = ReplicaServer::open(
        replica_paths.clone(),
        FollowerConfig {
            read_timeout: Duration::from_millis(500),
            reconnect_backoff: Duration::from_millis(20),
            ..Default::default()
        },
        Arc::clone(&pipeline),
        model,
    )
    .unwrap();
    let replica_svc = replica.service();
    let replica_app = QuestApp::new(replica.service(), replica.health()).read_only();
    assert_eq!(replica_svc.kb_len(), 0, "fresh replica starts empty");

    let stop = Arc::new(AtomicBool::new(false));
    let runner = std::thread::spawn({
        let stop = Arc::clone(&stop);
        let addr = leader_addr.clone();
        move || replica.run(&addr, &stop)
    });

    // the boot epoch ships through the WAL and gets republished
    wait_until("replica republishes the boot epoch", || {
        replica_svc.kb_len() == svc.kb_len()
    });

    // --- a learn through the leader's real HTTP handler
    let part = corpus.bundles[0].part_id.clone();
    let learn_body = format!(
        "{{\"part_id\":\"{part}\",\"text\":\"replicated failure mode omega\",\"code\":\"E-REPL-9\"}}"
    );
    let resp = leader_app.handle(&request("POST", "/learn", &learn_body));
    assert_eq!(resp.status, 200, "{}", body_str(&resp));

    // the replica catches up and serves the learned epoch — /suggest goes
    // through the identical handler code with zero serve-layer changes
    wait_until("replica serves the learned epoch", || {
        replica_svc.epoch() == svc.epoch()
    });
    let suggest_body =
        format!("{{\"part_id\":\"{part}\",\"text\":\"replicated failure mode omega\"}}");
    let resp = replica_app.handle(&request("POST", "/suggest", &suggest_body));
    assert_eq!(resp.status, 200);
    assert!(
        body_str(&resp).contains("E-REPL-9"),
        "replica suggests the learned code: {}",
        body_str(&resp)
    );

    // writes are refused on the replica, and /healthz names both roles
    let resp = replica_app.handle(&request("POST", "/learn", &learn_body));
    assert_eq!(resp.status, 403, "{}", body_str(&resp));
    let resp = replica_app.handle(&request("GET", "/healthz", ""));
    let health = body_str(&resp);
    assert!(health.contains("\"role\":\"replica\""), "{health}");
    assert!(health.contains("\"connected\":true"), "{health}");
    let resp = leader_app.handle(&request("GET", "/healthz", ""));
    let health = body_str(&resp);
    assert!(health.contains("\"role\":\"leader\""), "{health}");
    assert!(health.contains("\"followers\":1"), "{health}");

    // wait until the follower acked everything the leader has on disk, so
    // the learn is an *acked* write when the leader dies
    let wal_len = std::fs::metadata(&leader_paths.wal).unwrap().len();
    wait_until("follower acks the full log", || {
        leader
            .status()
            .min_acked()
            .is_some_and(|c| c.offset >= wal_len)
    });

    // --- leader loss, replica promotion
    stop.store(true, Ordering::SeqCst);
    leader.shutdown();
    let (follower, result) = runner.join().unwrap();
    result.unwrap();

    let (mut promoted_store, _) = follower
        .promote(SyncPolicy::OsOnly, SegmentRetention::default())
        .unwrap();
    let promoted_svc = RecommendationService::load_latest(promoted_store.db(), pipeline)
        .unwrap()
        .expect("the promoted store holds the shipped epochs");
    assert_eq!(promoted_svc.epoch(), svc.epoch());
    let promoted_svc = Arc::new(promoted_svc);
    let promoted_app = QuestApp::new(Arc::clone(&promoted_svc), HealthInfo::default());
    let resp = promoted_app.handle(&request("POST", "/suggest", &suggest_body));
    assert_eq!(resp.status, 200);
    assert!(
        body_str(&resp).contains("E-REPL-9"),
        "pre-crash acked learn visible after promotion: {}",
        body_str(&resp)
    );

    // the promoted store is writable: new learns persist and checkpoint
    assert!(promoted_svc.learn(&corpus.bundles[1], "E-REPL-10"));
    promoted_svc
        .snapshot()
        .save_to_logged(&mut promoted_store)
        .unwrap();
    promoted_store.checkpoint().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
