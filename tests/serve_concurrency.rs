//! Serving-layer concurrency battery (ISSUE 6 satellite 3): N clients
//! hammer `POST /suggest` over keep-alive connections while a writer loops
//! `POST /learn` epoch publishes. Invariants, mirroring the snapshot
//! concurrency suite one layer down:
//!
//! * every `/suggest` response is internally consistent — its epoch is one
//!   the service actually published, and each suggested code is in the
//!   part's own code list;
//! * per connection, observed epochs never decrease (each request sees the
//!   published snapshot or a newer one);
//! * `/healthz` epochs are monotonically non-decreasing;
//! * shutdown drains: every `/learn` acked with a 200 is published — after
//!   the server is gone, the shared service's knowledge base accounts for
//!   every acked instance.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qatk_core::prelude::{FeatureModel, SimilarityMeasure};
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_obs::json::{self, Value};
use qatk_serve::{HttpClient, Server, ServerConfig};
use quest::prelude::*;

fn start() -> (Server, Arc<RecommendationService>, Corpus) {
    let corpus = Corpus::generate(CorpusConfig::small(23));
    let svc = Arc::new(RecommendationService::train(
        &corpus,
        FeatureModel::BagOfWords,
        SimilarityMeasure::Overlap,
    ));
    let app = Arc::new(QuestApp::new(Arc::clone(&svc), HealthInfo::default()));
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 6,
            ..ServerConfig::default()
        },
        app,
    )
    .expect("bind loopback");
    (server, svc, corpus)
}

fn parse_json(body: &[u8]) -> Value {
    json::parse(std::str::from_utf8(body).expect("response is UTF-8")).expect("response is JSON")
}

#[test]
fn readers_see_consistent_monotonic_epochs_under_publishes() {
    const READERS: usize = 4;
    const READS_PER_CLIENT: usize = 60;
    const LEARN_BATCHES: usize = 12;

    let (server, svc, corpus) = start();
    let addr = server.local_addr();
    let initial_epoch = svc.epoch();
    let writer_done = AtomicBool::new(false);
    let max_health_epoch = AtomicU64::new(initial_epoch);

    let suggest_body = {
        let b = &corpus.bundles[0];
        format!(
            "{{\"part_id\":\"{}\",\"text\":\"{}\"}}",
            json::escape(&b.part_id),
            json::escape(&b.supplier_report)
        )
    };

    std::thread::scope(|scope| {
        // the writer: each /learn publishes one epoch
        scope.spawn(|| {
            let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
            for i in 0..LEARN_BATCHES {
                let body = format!(
                    "{{\"part_id\":\"{}\",\"text\":\"novel failure mode {i} vibration\",\"code\":\"EX-{i}\"}}",
                    json::escape(&corpus.bundles[0].part_id)
                );
                let r = c.request("POST", "/learn", Some(&body)).unwrap();
                assert_eq!(r.status, 200, "{}", r.body_str());
                let doc = parse_json(&r.body);
                // ack ⇒ published: the service must already be at the epoch
                // the response reports
                let acked = doc.get("epoch").and_then(Value::as_u64).unwrap();
                assert!(
                    svc.epoch() >= acked,
                    "learn acked epoch {acked} before the service reached it"
                );
            }
            writer_done.store(true, Ordering::Release);
        });

        // the health poller: epochs never go backwards
        scope.spawn(|| {
            let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
            let mut last = initial_epoch;
            while !writer_done.load(Ordering::Acquire) {
                let r = c.request("GET", "/healthz", None).unwrap();
                assert_eq!(r.status, 200);
                let doc = parse_json(&r.body);
                let epoch = doc.get("epoch").and_then(Value::as_u64).unwrap();
                assert!(epoch >= last, "healthz epoch regressed: {last} -> {epoch}");
                last = epoch;
                max_health_epoch.fetch_max(epoch, Ordering::AcqRel);
            }
        });

        // the readers: hammer /suggest on keep-alive connections
        for _ in 0..READERS {
            scope.spawn(|| {
                let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
                let mut last_epoch = 0u64;
                for _ in 0..READS_PER_CLIENT {
                    let r = c.request("POST", "/suggest", Some(&suggest_body)).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body_str());
                    let doc = parse_json(&r.body);
                    let epoch = doc.get("epoch").and_then(Value::as_u64).unwrap();
                    assert!(
                        epoch >= last_epoch,
                        "per-connection epoch regressed: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    // internal consistency: suggested codes come from the
                    // part's own code list of the same snapshot
                    let all: Vec<&str> = doc
                        .get("all_codes_for_part")
                        .and_then(Value::as_arr)
                        .unwrap()
                        .iter()
                        .filter_map(Value::as_str)
                        .collect();
                    for sc in doc.get("top").and_then(Value::as_arr).unwrap() {
                        let code = sc.get("code").and_then(Value::as_str).unwrap();
                        assert!(
                            all.contains(&code),
                            "suggested code {code} missing from the part's code list (epoch {epoch})"
                        );
                    }
                }
            });
        }
    });

    // every /learn published exactly one epoch
    assert_eq!(svc.epoch(), initial_epoch + LEARN_BATCHES as u64);
    assert!(max_health_epoch.load(Ordering::Acquire) <= svc.epoch());
    server.shutdown();
}

#[test]
fn shutdown_drains_without_dropping_acked_learns() {
    const LEARNS: usize = 8;

    let (server, svc, corpus) = start();
    let addr = server.local_addr();
    let kb_before = svc.kb_len();
    let part = corpus.bundles[0].part_id.clone();

    // ack every learn, then shut the server down immediately afterwards —
    // anything the client saw a 200 for must already be in the service
    let mut acked_added = 0u64;
    let mut last_acked_epoch = 0u64;
    let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
    for i in 0..LEARNS {
        let body = format!(
            "{{\"part_id\":\"{}\",\"text\":\"drain check instance {i} leakage\",\"code\":\"DR-{i}\"}}",
            json::escape(&part)
        );
        let r = c.request("POST", "/learn", Some(&body)).unwrap();
        assert_eq!(r.status, 200, "{}", r.body_str());
        let doc = parse_json(&r.body);
        acked_added += doc.get("added").and_then(Value::as_u64).unwrap();
        last_acked_epoch = doc.get("epoch").and_then(Value::as_u64).unwrap();
    }
    server.shutdown();

    // the server is gone; the shared service retains every acked learn
    assert_eq!(svc.pending_len(), 0, "acked learns left unpublished");
    assert!(svc.epoch() >= last_acked_epoch);
    assert_eq!(
        svc.kb_len() as u64,
        kb_before as u64 + acked_added,
        "acked instances missing from the knowledge base after shutdown"
    );
    // and the port no longer accepts work
    assert!(
        HttpClient::connect(addr, Duration::from_millis(300))
            .and_then(|mut c| c.request("GET", "/healthz", None))
            .is_err(),
        "server still serving after shutdown"
    );
}

#[test]
fn concurrent_batch_classification_pins_one_epoch() {
    const WRITER_ROUNDS: usize = 6;

    let (server, svc, corpus) = start();
    let addr = server.local_addr();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
            for i in 0..WRITER_ROUNDS {
                let body = format!(
                    "{{\"part_id\":\"{}\",\"text\":\"pin check {i} corrosion\",\"code\":\"PC-{i}\"}}",
                    json::escape(&corpus.bundles[0].part_id)
                );
                let r = c.request("POST", "/learn", Some(&body)).unwrap();
                assert_eq!(r.status, 200);
            }
            done.store(true, Ordering::Release);
        });

        scope.spawn(|| {
            let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
            let body = "{\"texts\":[\"engine stalls at idle\",\"coolant leak near hose\",\"rattling noise over bumps\"]}";
            let mut last_epoch = 0u64;
            while !done.load(Ordering::Acquire) {
                let r = c.request("POST", "/classify_batch", Some(body)).unwrap();
                assert_eq!(r.status, 200, "{}", r.body_str());
                let doc = parse_json(&r.body);
                let epoch = doc.get("epoch").and_then(Value::as_u64).unwrap();
                assert!(epoch >= last_epoch, "batch epoch regressed");
                last_epoch = epoch;
                let results = doc.get("results").and_then(Value::as_arr).unwrap();
                assert_eq!(results.len(), 3, "one ranking per text, always");
            }
        });
    });
    assert!(svc.epoch() >= WRITER_ROUNDS as u64);
    server.shutdown();
}
