//! Concurrency battery for qatk-trace: many threads drive real requests
//! through one shared `QuestApp` while every request pins its own trace id,
//! and every captured tree must come out well-formed — a single root,
//! children nested inside their parent's interval, no orphan spans — with
//! the ring never tearing (a tree is published whole or not at all).

use std::sync::Arc;

use qatk_core::prelude::{FeatureModel, SimilarityMeasure};
use qatk_corpus::prelude::{Corpus, CorpusConfig};
use qatk_serve::http::RequestParser;
use qatk_serve::{Handler, Request};
use qatk_trace::{SpanRecord, TraceId, NO_PARENT};
use quest::prelude::*;

fn request(method: &str, path: &str, body: &str, trace: u64) -> Request {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nx-qatk-trace: {trace:016x}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut p = RequestParser::new(Default::default());
    p.push(raw.as_bytes());
    p.take_request().unwrap().unwrap()
}

/// Structural invariants every captured tree must satisfy.
fn assert_well_formed(spans: &[SpanRecord], ctx: &str) {
    assert!(!spans.is_empty(), "{ctx}: empty tree");
    let root = &spans[0];
    assert_eq!(root.parent, NO_PARENT, "{ctx}: spans[0] is not the root");
    assert_eq!(
        spans.iter().filter(|s| s.parent == NO_PARENT).count(),
        1,
        "{ctx}: more than one root"
    );
    for (i, span) in spans.iter().enumerate() {
        assert_eq!(span.id as usize, i, "{ctx}: id/index mismatch");
        assert!(
            span.end_ns >= span.start_ns,
            "{ctx}: span {} ends before it starts",
            span.name
        );
        if span.parent == NO_PARENT {
            continue;
        }
        // no orphans: the parent exists and was opened earlier
        assert!(
            (span.parent as usize) < i,
            "{ctx}: span {} has a forward/dangling parent link",
            span.name
        );
        let parent = &spans[span.parent as usize];
        // nesting: the child's interval lies within the parent's
        assert!(
            span.start_ns >= parent.start_ns && span.end_ns <= parent.end_ns,
            "{ctx}: child {} [{}, {}] escapes parent {} [{}, {}]",
            span.name,
            span.start_ns,
            span.end_ns,
            parent.name,
            parent.start_ns,
            parent.end_ns,
        );
    }
}

#[test]
fn concurrent_requests_capture_only_well_formed_trees() {
    let _guard = qatk_trace::test_lock();
    qatk_trace::set_enabled(true);
    qatk_trace::store().clear();

    let corpus = Corpus::generate(CorpusConfig::small(31));
    let part = corpus.bundles[0].part_id.clone();
    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfWords,
        SimilarityMeasure::Overlap,
    );
    let app = Arc::new(QuestApp::new(Arc::new(svc), HealthInfo::default()));

    let threads: u64 = 8;
    let per_thread: u64 = 25; // 200 traces total, under the 256-slot ring
    std::thread::scope(|s| {
        for t in 0..threads {
            let app = Arc::clone(&app);
            let part = part.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let id = (t << 32) | (i + 1);
                    let body = format!(
                        "{{\"part_id\":\"{part}\",\"text\":\"thread {t} request {i} oil leak\"}}"
                    );
                    let resp = app.handle(&request("POST", "/suggest", &body, id));
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.trace, id, "trace id echoed under concurrency");
                }
            });
        }
    });

    // every pinned id is retrievable and its tree is structurally sound
    let mut found = 0;
    for t in 0..threads {
        for i in 0..per_thread {
            let id = (t << 32) | (i + 1);
            let trees = qatk_trace::store().lookup(TraceId::from_u64(id).unwrap());
            assert_eq!(trees.len(), 1, "trace {id:#x} captured exactly once");
            let ctx = format!("trace {id:#x}");
            assert_well_formed(&trees[0].spans, &ctx);
            assert_eq!(trees[0].spans[0].name, "serve.suggest", "{ctx}");
            assert!(
                trees[0].spans.iter().any(|s| s.name == "core.rank"),
                "{ctx}: rank child missing"
            );
            found += 1;
        }
    }
    assert_eq!(found, threads * per_thread);

    // the ring itself never tears: every retained tree is whole
    for tree in qatk_trace::store().recent() {
        assert_well_formed(&tree.spans, &format!("ring entry {}", tree.trace_id));
    }
}
