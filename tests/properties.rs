//! Property-based tests over the core data structures and invariants, using
//! proptest (DESIGN.md deliverable (c)).

use proptest::collection::{hash_set, vec};
use proptest::prelude::*;
use std::collections::BTreeSet;

use quest_qatk::prelude::*;
use quest_qatk::store::row;

// ---------------------------------------------------------------------------
// FeatureSet: behaves exactly like a set of u32
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn feature_set_matches_btreeset_model(a in vec(0u32..500, 0..80), b in vec(0u32..500, 0..80)) {
        let fa = FeatureSet::from_unsorted(a.clone());
        let fb = FeatureSet::from_unsorted(b.clone());
        let ma: BTreeSet<u32> = a.into_iter().collect();
        let mb: BTreeSet<u32> = b.into_iter().collect();
        prop_assert_eq!(fa.len(), ma.len());
        prop_assert_eq!(fa.intersection_size(&fb), ma.intersection(&mb).count());
        prop_assert_eq!(fa.union_size(&fb), ma.union(&mb).count());
        prop_assert_eq!(fa.intersects(&fb), !ma.is_disjoint(&mb));
        for x in ma.iter() {
            prop_assert!(fa.contains(*x));
        }
    }

    #[test]
    fn similarity_axioms(a in vec(0u32..300, 1..60), b in vec(0u32..300, 1..60)) {
        let fa = FeatureSet::from_unsorted(a);
        let fb = FeatureSet::from_unsorted(b);
        for m in SimilarityMeasure::ALL {
            let s_ab = m.score(&fa, &fb);
            let s_ba = m.score(&fb, &fa);
            // bounded, symmetric, self-similarity is 1
            prop_assert!((0.0..=1.0).contains(&s_ab), "{:?} -> {}", m, s_ab);
            prop_assert!((s_ab - s_ba).abs() < 1e-12);
            prop_assert!((m.score(&fa, &fa) - 1.0).abs() < 1e-12);
        }
        // overlap dominates dice dominates jaccard
        let j = SimilarityMeasure::Jaccard.score(&fa, &fb);
        let d = SimilarityMeasure::Dice.score(&fa, &fb);
        let o = SimilarityMeasure::Overlap.score(&fa, &fb);
        prop_assert!(o >= d - 1e-12);
        prop_assert!(d >= j - 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Store: row round-trips through snapshot bytes
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-ZäöüÄÖÜß0-9 .,;-]{0,40}".prop_map(Value::Text),
        vec(any::<u8>(), 0..60).prop_map(Value::Blob),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn database_snapshot_roundtrip(
        texts in vec("[a-zA-Z0-9 ]{0,30}", 1..30),
        blobs in vec(vec(any::<u8>(), 0..20), 1..10),
    ) {
        let mut db = Database::new();
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("t", DataType::Text)
            .col_null("b", DataType::Blob)
            .build()
            .unwrap();
        db.create_table("x", schema).unwrap();
        for (i, t) in texts.iter().enumerate() {
            let blob: Value = blobs.get(i % blobs.len()).cloned().map(Value::Blob).unwrap_or(Value::Null);
            db.insert("x", row![i as i64, t.clone(), blob]).unwrap();
        }
        let back = Database::from_bytes(&db.to_bytes()).unwrap();
        prop_assert_eq!(back.total_rows(), db.total_rows());
        for i in 0..texts.len() {
            let a = db.get("x", &Value::Int(i as i64)).unwrap().unwrap();
            let b = back.get("x", &Value::Int(i as i64)).unwrap().unwrap();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn value_total_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // antisymmetry
        if a.cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // transitivity
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert!(a.cmp(&c) != Ordering::Greater);
        }
        // equality implies equal hashes
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}

// ---------------------------------------------------------------------------
// Trie + annotator: longest match invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_lookup_finds_all_inserted(phrases in hash_set("[a-z]{1,8}( [a-z]{1,8}){0,2}", 1..20)) {
        let mut trie = TokenTrie::new();
        for (i, p) in phrases.iter().enumerate() {
            trie.insert_phrase(p, ConceptId(i as u32));
        }
        for (i, p) in phrases.iter().enumerate() {
            let toks = normalize_phrase(p);
            let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
            let hits = trie.lookup(&refs);
            prop_assert!(hits.contains(&ConceptId(i as u32)), "lost phrase {p}");
        }
    }

    #[test]
    fn longest_match_consumes_maximal_known_prefix(words in vec("[a-z]{1,6}", 1..12)) {
        // insert every prefix of the word sequence as its own concept
        let mut trie = TokenTrie::new();
        for k in 1..=words.len() {
            trie.insert_tokens(&words[..k], ConceptId(k as u32));
        }
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let (len, concepts) = trie.longest_match(&refs, 0).unwrap();
        // the longest prefix must win
        prop_assert_eq!(len, words.len());
        prop_assert!(concepts.contains(&ConceptId(words.len() as u32)));
    }

    #[test]
    fn normalization_is_idempotent(s in "[a-zA-ZäöüÄÖÜß0-9 .,;-]{0,60}") {
        let once = normalize_phrase(&s);
        let again = normalize_phrase(&once.join(" "));
        prop_assert_eq!(once, again);
    }
}

// ---------------------------------------------------------------------------
// Evaluation: stratified folds and accuracy counters
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stratified_folds_cover_all_items(classes in vec(0u32..25, 2..200), seed in any::<u64>()) {
        let folds = stratified_folds(&classes, 5, seed);
        prop_assert_eq!(folds.len(), classes.len());
        prop_assert!(folds.iter().all(|&f| f < 5));
        // per class, fold sizes differ by at most one (round-robin deal)
        for class in 0..25u32 {
            let mut per_fold = [0usize; 5];
            for (i, &f) in folds.iter().enumerate() {
                if classes[i] == class {
                    per_fold[f] += 1;
                }
            }
            let max = per_fold.iter().max().unwrap();
            let min = per_fold.iter().min().unwrap();
            prop_assert!(max - min <= 1, "class {class} unbalanced: {per_fold:?}");
        }
    }

    #[test]
    fn accuracy_counter_matches_naive_model(ranks in vec(proptest::option::of(0usize..40), 1..80)) {
        let mut counter = AccuracyCounter::new(&PAPER_KS);
        for r in &ranks {
            counter.record(*r);
        }
        let acc = counter.accuracies();
        for (i, &k) in PAPER_KS.iter().enumerate() {
            let expected = ranks.iter().filter(|r| r.is_some_and(|x| x < k)).count() as f64
                / ranks.len() as f64;
            prop_assert!((acc[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_probabilities_are_a_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.probability(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // monotone non-increasing in rank
        for k in 1..n {
            prop_assert!(z.probability(k) <= z.probability(k - 1) + 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Classifier: ranking invariants under arbitrary knowledge bases
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ranking_is_sorted_deduped_and_bounded(
        nodes in vec((0usize..4, 0usize..12, vec(0u32..60, 1..10)), 1..80),
        query in vec(0u32..60, 1..10),
    ) {
        let mut kb = KnowledgeBase::new();
        for (part, code, feats) in &nodes {
            kb.insert(
                format!("P-{part}"),
                format!("E-{code}"),
                FeatureSet::from_unsorted(feats.clone()),
            );
        }
        let q = FeatureSet::from_unsorted(query);
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb, "P-1", &q);
        // bounded by top_nodes
        prop_assert!(ranked.len() <= knn.top_nodes);
        // sorted by descending score
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        // deduped
        let mut codes: Vec<&str> = ranked.iter().map(|s| s.code.as_str()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        prop_assert_eq!(codes.len(), n);
        // every suggested code belongs to the queried part — unless the part
        // is unknown to the KB, where candidate selection intentionally
        // falls back across all parts (paper Fig. 5)
        if kb.has_part("P-1") {
            for s in &ranked {
                prop_assert!(kb.codes_for_part("P-1").contains(&s.code.as_str()));
            }
        }
    }
}
