//! End-to-end tracing acceptance: a `/suggest` served over real HTTP
//! leaves a retrievable tree at `/debug/traces` with the id round-tripping
//! through the `x-qatk-trace` header, and a replicated `/learn` on a
//! leader records both the WAL-append child span and a follower-ack-lag
//! event under the *same* trace id.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use qatk_core::prelude::*;
use qatk_corpus::prelude::*;
use qatk_repl::prelude::*;
use qatk_serve::http::RequestParser;
use qatk_serve::{Handler, HttpClient, Request};
use qatk_store::prelude::*;
use qatk_trace::TraceId;
use quest::prelude::*;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qatk_trace_e2e_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn request(method: &str, path: &str, body: &str, trace: Option<u64>) -> Request {
    let trace_header = match trace {
        Some(t) => format!("x-qatk-trace: {t:016x}\r\n"),
        None => String::new(),
    };
    let raw = format!(
        "{method} {path} HTTP/1.1\r\n{trace_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut p = RequestParser::new(Default::default());
    p.push(raw.as_bytes());
    p.take_request().unwrap().unwrap()
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The served path: a real HTTP server, a client-pinned trace id, and the
/// tree retrievable over `GET /debug/traces` afterwards.
#[test]
fn served_suggest_trace_round_trips_and_shows_in_debug_traces() {
    let _guard = qatk_trace::test_lock();
    qatk_trace::set_enabled(true);
    qatk_trace::store().clear();

    let corpus = Corpus::generate(CorpusConfig::small(31));
    let part = corpus.bundles[0].part_id.clone();
    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfWords,
        SimilarityMeasure::Overlap,
    );
    let app = Arc::new(QuestApp::new(Arc::new(svc), HealthInfo::default()));
    let server = qatk_serve::Server::bind(
        "127.0.0.1:0",
        qatk_serve::ServerConfig {
            threads: 2,
            ..Default::default()
        },
        app,
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
    let body = format!("{{\"part_id\":\"{part}\",\"text\":\"oil leaking from the housing\"}}");
    let head = format!(
        "POST /suggest HTTP/1.1\r\nHost: qatk\r\nx-qatk-trace: 00000000feedbead\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    client.send_raw(head.as_bytes()).unwrap();
    let resp = client.read_response().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(
        resp.header("x-qatk-trace"),
        Some("00000000feedbead"),
        "pinned id echoed over the wire"
    );

    // the tree is retrievable through the debug endpoint, as JSON
    let resp = client.request("GET", "/debug/traces", None).unwrap();
    assert_eq!(resp.status, 200);
    let doc = qatk_obs::json::parse(&resp.body_str()).unwrap();
    let trees = doc.as_arr().unwrap();
    let tree = trees
        .iter()
        .find(|t| {
            t.get("trace_id").and_then(qatk_obs::json::Value::as_str) == Some("00000000feedbead")
        })
        .expect("pinned trace visible at /debug/traces");
    let spans = tree
        .get("spans")
        .and_then(qatk_obs::json::Value::as_arr)
        .unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(qatk_obs::json::Value::as_str))
        .collect();
    assert_eq!(names[0], "serve.suggest", "names: {names:?}");
    assert!(names.contains(&"core.rank"), "names: {names:?}");
    assert!(
        names.contains(&"text.tokenize") || names.contains(&"text.annotate"),
        "names: {names:?}"
    );

    server.shutdown();
}

/// The replicated-learn path: the WAL append contributes a child span, the
/// trace id rides Seal/Tip frames to the follower, and the leader records
/// a `repl.follower_ack` event under the originating id once the follower
/// acks past the learn.
#[test]
fn replicated_learn_records_wal_span_and_follower_ack_lag() {
    let _guard = qatk_trace::test_lock();
    qatk_trace::set_enabled(true);
    qatk_trace::store().clear();

    let dir = tmp_dir("learn");
    let leader_paths = ReplPaths::new(dir.join("snap.qdb"), dir.join("wal.log"));
    let replica_dir = dir.join("replica");
    std::fs::create_dir_all(&replica_dir).unwrap();
    let replica_paths = ReplPaths::new(replica_dir.join("snap.qdb"), replica_dir.join("wal.log"));

    let corpus = Corpus::generate(CorpusConfig::small(31));
    let part = corpus.bundles[0].part_id.clone();
    let model = FeatureModel::BagOfWords;
    let pipeline = Arc::new(build_pipeline(&corpus, model));

    let (mut store, _) = LoggedDatabase::open(
        &leader_paths.snapshot,
        &leader_paths.wal,
        SyncPolicy::OsOnly,
    )
    .unwrap();
    let svc = Arc::new(RecommendationService::train(
        &corpus,
        model,
        SimilarityMeasure::Jaccard,
    ));
    assert!(KnowledgeSnapshot::ensure_replicated_tables(&mut store).unwrap());
    store.checkpoint().unwrap();
    svc.snapshot().save_to_logged(&mut store).unwrap();

    let leader = Leader::bind(
        "127.0.0.1:0",
        leader_paths.clone(),
        LeaderConfig {
            poll_interval: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .unwrap();
    let leader_addr = leader.local_addr().to_string();

    // the cmd_serve publish hook shape: persist, and hand the request's
    // trace id to the replication sessions for ack-lag accounting
    let shared_store = Arc::new(Mutex::new(store));
    let hook: PublishHook = Arc::new({
        let store = Arc::clone(&shared_store);
        let status = leader.status();
        move |svc: &RecommendationService| {
            status.set_learn_trace(qatk_trace::current_trace_id_u64());
            let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
            svc.snapshot()
                .save_to_logged(&mut store)
                .map_err(|e| e.to_string())
        }
    });
    let app = QuestApp::new(
        Arc::clone(&svc),
        HealthInfo {
            replication: Some(ReplicationHealth::Leader(leader.status())),
            ..Default::default()
        },
    )
    .with_publish_hook(hook);

    let replica = ReplicaServer::open(
        replica_paths,
        FollowerConfig {
            read_timeout: Duration::from_millis(500),
            reconnect_backoff: Duration::from_millis(20),
            ..Default::default()
        },
        pipeline,
        model,
    )
    .unwrap();
    let replica_svc = replica.service();
    let stop = Arc::new(AtomicBool::new(false));
    let runner = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || replica.run(&leader_addr, &stop)
    });
    wait_until("replica republishes the boot epoch", || {
        replica_svc.kb_len() == svc.kb_len()
    });

    // one traced /learn through the real handler
    let trace: u64 = 0x1EA4_0001;
    let id = TraceId::from_u64(trace).unwrap();
    let body = format!(
        "{{\"part_id\":\"{part}\",\"text\":\"traced failure mode\",\"code\":\"E-TRACE-1\"}}"
    );
    let resp = app.handle(&request("POST", "/learn", &body, Some(trace)));
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.trace, trace);

    // the request tree carries the WAL append as a child of serve.learn
    let trees = qatk_trace::store().lookup(id);
    let request_tree = trees
        .iter()
        .find(|t| t.spans[0].name == "serve.learn")
        .expect("learn request tree captured");
    assert!(
        request_tree
            .spans
            .iter()
            .any(|s| s.name == "store.wal_append"),
        "wal append span missing: {:?}",
        request_tree
            .spans
            .iter()
            .map(|s| s.name)
            .collect::<Vec<_>>()
    );

    // the follower acks past the learn; the leader files the ack lag as a
    // second tree under the *same* trace id
    wait_until(
        "leader records follower ack lag for the traced learn",
        || {
            qatk_trace::store()
                .lookup(id)
                .iter()
                .any(|t| t.spans[0].name == "repl.follower_ack")
        },
    );

    stop.store(true, Ordering::SeqCst);
    leader.shutdown();
    let (_follower, result) = runner.join().unwrap();
    result.unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
