//! Concurrency guarantees of the freeze-and-share snapshot architecture
//! (DESIGN.md §8): many reader threads over one shared
//! [`KnowledgeSnapshot`] see exactly the sequential results, and epoch swaps
//! never tear in-flight readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use qatk_core::prelude::*;
use qatk_corpus::bundle::DataBundle;
use qatk_corpus::generator::{Corpus, CorpusConfig};
use quest::service::{RecommendationService, Suggestions};

fn service(seed: u64) -> (Corpus, RecommendationService) {
    let corpus = Corpus::generate(CorpusConfig::small(seed));
    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfWords,
        SimilarityMeasure::Jaccard,
    );
    (corpus, svc)
}

/// Eight threads suggesting concurrently over one shared service (one shared
/// `Arc<KnowledgeSnapshot>` underneath) produce exactly the sequential
/// answers, bundle by bundle.
#[test]
fn concurrent_suggest_matches_sequential_exactly() {
    const THREADS: usize = 8;
    let (corpus, svc) = service(99);
    let worklist: Vec<&DataBundle> = corpus.bundles.iter().take(64).collect();

    let sequential: Vec<Suggestions> = worklist.iter().map(|b| svc.suggest(b)).collect();

    // every thread walks the whole worklist with a stride offset, so each
    // bundle is suggested by all eight threads at overlapping times
    let concurrent: Vec<Vec<Suggestions>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let svc = &svc;
                let worklist = &worklist;
                scope.spawn(move || {
                    (0..worklist.len())
                        .map(|i| svc.suggest(worklist[(i + t) % worklist.len()]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, results) in concurrent.iter().enumerate() {
        for (i, got) in results.iter().enumerate() {
            let expected = &sequential[(i + t) % worklist.len()];
            assert_eq!(got, expected, "thread {t} diverged at position {i}");
        }
    }
}

/// A reader that pinned a snapshot before a swap keeps getting the old
/// epoch's answers — even while another thread publishes new epochs — and
/// the fallback code lists it hands out stay internally consistent.
#[test]
fn pinned_readers_survive_concurrent_epoch_swaps() {
    let (corpus, svc) = service(7);
    let probe = corpus.bundles[0].clone();
    let code = probe.error_code.clone().unwrap();
    let pinned = svc.snapshot();
    let baseline = svc.suggest_on(&pinned, &probe);
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        // writer: a stream of learn publishes, each a new epoch
        let writer_stop = Arc::clone(&stop);
        let writer_svc = &svc;
        let writer_probe = probe.clone();
        let writer = scope.spawn(move || {
            let mut published = 0u64;
            while !writer_stop.load(Ordering::Relaxed) {
                let mut fresh = writer_probe.clone();
                fresh.reference_number = format!("R-SWAP-{published}");
                fresh.supplier_report =
                    format!("previously unseen narrative token zz{published}qx");
                writer_svc.learn(&fresh, &code);
                published += 1;
            }
            published
        });

        // readers: half pinned to the pre-swap snapshot, half live
        let readers: Vec<_> = (0..8)
            .map(|t| {
                let stop = Arc::clone(&stop);
                let svc = &svc;
                let pinned = Arc::clone(&pinned);
                let baseline = &baseline;
                let probe = &probe;
                scope.spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if t % 2 == 0 {
                            // pinned reader: answers frozen at the old epoch
                            let s = svc.suggest_on(&pinned, probe);
                            assert_eq!(&s, baseline, "pinned reader saw a torn snapshot");
                        } else {
                            // live reader: whatever epoch is current, the
                            // result must be self-consistent
                            let s = svc.suggest(probe);
                            for sc in &s.top {
                                assert!(
                                    s.all_codes_for_part.contains(&sc.code),
                                    "suggested code missing from its own epoch's code list"
                                );
                            }
                        }
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        // let the race run for a bounded number of publishes
        while !stop.load(Ordering::Relaxed) {
            if svc.epoch() >= 20 {
                stop.store(true, Ordering::Relaxed);
            }
            thread::yield_now();
        }

        let published = writer.join().unwrap();
        assert!(published >= 20, "writer only published {published} epochs");
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never completed a read");
        }
    });

    // the pinned snapshot is still epoch 0 after all that churn
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(svc.suggest_on(&pinned, &probe), baseline);
}

/// learn → swap → visibility: the instance a quality expert just taught is
/// recommendable on the very next suggest, and the epoch advanced exactly
/// once per publish.
#[test]
fn learned_instance_visible_immediately_after_swap() {
    let (corpus, svc) = service(42);
    assert_eq!(svc.epoch(), 0);
    let kb0 = svc.kb_len();

    let mut fresh = corpus.bundles[0].clone();
    fresh.reference_number = "R-VIS".into();
    fresh.supplier_report =
        "completely novel failure narrative visibilityprobe qq41 detected".into();
    let code = corpus.bundles[0].error_code.clone().unwrap();

    assert!(svc.learn(&fresh, &code));
    assert_eq!(svc.epoch(), 1);
    assert_eq!(svc.kb_len(), kb0 + 1);

    // a near-duplicate of the taught bundle now surfaces the taught code
    let mut similar = fresh.clone();
    similar.reference_number = "R-VIS-2".into();
    let s = svc.suggest(&similar);
    assert!(
        s.top.iter().any(|sc| sc.code == code),
        "taught code absent right after the swap"
    );

    // re-teaching the identical configuration publishes (epoch moves) but
    // dedups the instance
    assert!(!svc.learn(&fresh, &code));
    assert_eq!(svc.kb_len(), kb0 + 1);
}

/// The frozen-vocabulary rule: tokens unseen at seal time are dropped from
/// queries, so padding a bundle with out-of-vocabulary noise cannot change
/// its ranking.
#[test]
fn out_of_vocabulary_noise_never_changes_rankings() {
    let (corpus, svc) = service(5);
    let clean = &corpus.bundles[1];
    let baseline = svc.suggest(clean);

    let mut noisy = clean.clone();
    noisy.mechanic_report = format!(
        "{} xqzzyv blorptang vexfluzz nonceword9981",
        noisy.mechanic_report
    );
    let with_noise = svc.suggest(&noisy);
    assert_eq!(with_noise.top, baseline.top);
}
