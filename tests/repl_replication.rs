//! Integration: WAL-shipping replication happy paths — a follower mirrors a
//! leader byte-for-byte through live writes, checkpoints, watermark
//! advances, restarts, snapshot re-seeds, and promotion.
//!
//! The crash-point matrix (failpoints at every protocol step) lives in
//! `tests/repl_crash.rs`; this file proves the steady-state machinery.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qatk_repl::prelude::*;
use qatk_store::prelude::*;
use qatk_store::wal::list_segments;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qatk_repl_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn paths_in(dir: &std::path::Path, role: &str) -> ReplPaths {
    let sub = dir.join(role);
    std::fs::create_dir_all(&sub).unwrap();
    ReplPaths::new(sub.join("snap.qdb"), sub.join("wal.log"))
}

fn leader_store(paths: &ReplPaths) -> LoggedDatabase {
    let (mut store, _) = LoggedDatabase::open_with_retention(
        &paths.snapshot,
        &paths.wal,
        SyncPolicy::OsOnly,
        SegmentRetention::Keep(4),
    )
    .unwrap();
    if !store.has_table("t") {
        let schema = SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("body", DataType::Text)
            .build()
            .unwrap();
        store.create_table("t", schema).unwrap();
        // DDL is not WAL-logged: checkpoint so followers get the schema
        // through the snapshot.
        store.checkpoint().unwrap();
    }
    store
}

fn test_config() -> (LeaderConfig, FollowerConfig) {
    let leader = LeaderConfig {
        poll_interval: Duration::from_millis(5),
        chunk_bytes: 512, // small, so multi-chunk paths are exercised
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(2),
    };
    let follower = FollowerConfig {
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        reconnect_backoff: Duration::from_millis(20),
        sync_each_chunk: false,
    };
    (leader, follower)
}

/// Spawn a follower thread; returns (status, stop flag, join handle
/// yielding the follower back together with its run result).
#[allow(clippy::type_complexity)]
fn spawn_follower(
    follower: Follower,
    addr: String,
) -> (
    Arc<ReplicaStatus>,
    Arc<AtomicBool>,
    std::thread::JoinHandle<(Follower, ReplResult<()>)>,
) {
    let status = follower.status();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut f = follower;
        let r = f.run(&addr, &stop2, &mut |_db, _cursor| {});
        (f, r)
    });
    (status, stop, handle)
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wal_len(paths: &ReplPaths) -> u64 {
    std::fs::metadata(&paths.wal).map(|m| m.len()).unwrap_or(0)
}

fn wait_for_catchup(status: &ReplicaStatus, store: &LoggedDatabase, paths: &ReplPaths) {
    let target = ReplCursor {
        watermark: 0,
        segment: store.epoch(),
        offset: wal_len(paths),
    };
    wait_until("follower catch-up", Duration::from_secs(10), || {
        status.applied().at_or_past(&target)
    });
}

#[test]
fn follower_mirrors_live_writes_checkpoints_and_watermarks() {
    let dir = tmp_dir("mirror");
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..40i64 {
        store.insert("t", row![i, format!("pre-{i}")]).unwrap();
    }

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();
    let (follower, report) = Follower::open(fp.clone(), fc).unwrap();
    assert!(!report.snapshot_loaded);
    let (status, stop, handle) = spawn_follower(follower, addr);

    wait_for_catchup(&status, &store, &lp);

    // keep writing while the follower is attached, across a checkpoint
    for i in 40..80i64 {
        store.insert("t", row![i, format!("live-{i}")]).unwrap();
    }
    store.checkpoint().unwrap();
    for i in 80..100i64 {
        store
            .update("t", &Value::Int(i - 50), row![i - 50, format!("upd-{i}")])
            .unwrap();
    }
    store.delete("t", &Value::Int(0)).unwrap();
    wait_for_catchup(&status, &store, &lp);

    // the follower heard the watermark advance and checkpointed itself
    wait_until("follower watermark", Duration::from_secs(10), || {
        status.applied().watermark == store.epoch()
    });
    assert!(fp.snapshot.exists(), "follower snapshot not written");

    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap();
    assert_eq!(
        follower.db().canonical_bytes(),
        store.db().canonical_bytes(),
        "follower diverged from leader"
    );

    // leader-side accounting saw the follower and its acks
    let ls = leader.status();
    assert!(ls.sessions_started() >= 1);
    leader.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_follower_is_seeded_with_a_snapshot_when_segments_are_gone() {
    let dir = tmp_dir("seed");
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();

    // DeleteCovered: checkpoints leave no sealed segments behind, so a
    // fresh follower cannot replay history and must be re-seeded.
    let (mut store, _) = LoggedDatabase::open(&lp.snapshot, &lp.wal, SyncPolicy::OsOnly).unwrap();
    let schema = SchemaBuilder::new()
        .pk("id", DataType::Int)
        .col("body", DataType::Text)
        .build()
        .unwrap();
    store.create_table("t", schema).unwrap();
    for round in 0..3i64 {
        for i in 0..20i64 {
            let id = round * 100 + i;
            store.insert("t", row![id, format!("r{id}")]).unwrap();
        }
        store.checkpoint().unwrap();
    }
    assert!(list_segments(&lp.wal).unwrap().is_empty());
    store.insert("t", row![999i64, "tail"]).unwrap();

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();
    let (follower, _) = Follower::open(fp.clone(), fc).unwrap();
    let (status, stop, handle) = spawn_follower(follower, addr);
    wait_for_catchup(&status, &store, &lp);

    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap();
    assert_eq!(
        follower.db().canonical_bytes(),
        store.db().canonical_bytes()
    );
    // it really was a snapshot install, not a replay from epoch zero
    assert!(fp.snapshot.exists());
    assert_eq!(follower.cursor().watermark, 3);
    leader.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restarted_follower_resumes_from_its_cursor() {
    let dir = tmp_dir("resume");
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..30i64 {
        store.insert("t", row![i, format!("a{i}")]).unwrap();
    }

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();

    // first attachment
    let (follower, _) = Follower::open(fp.clone(), fc.clone()).unwrap();
    let (status, stop, handle) = spawn_follower(follower, addr.clone());
    wait_for_catchup(&status, &store, &lp);
    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap();
    let parked_cursor = follower.cursor();
    drop(follower);

    // leader moves on while the follower is down, across a checkpoint
    for i in 30..60i64 {
        store.insert("t", row![i, format!("b{i}")]).unwrap();
    }
    store.checkpoint().unwrap();
    for i in 60..70i64 {
        store.insert("t", row![i, format!("c{i}")]).unwrap();
    }

    // second attachment recovers locally, reports its cursor, and resumes
    let (follower, report) = Follower::open(fp.clone(), fc).unwrap();
    assert!(report.cursor.at_or_past(&parked_cursor));
    let replayed_locally = report.records_replayed;
    let (status, stop, handle) = spawn_follower(follower, addr);
    wait_for_catchup(&status, &store, &lp);
    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap();
    assert_eq!(
        follower.db().canonical_bytes(),
        store.db().canonical_bytes()
    );
    // resumption replayed only the delta over the wire, not all of history
    assert!(
        follower.status().records_applied() <= 40 + replayed_locally as u64,
        "follower re-shipped history instead of resuming"
    );
    leader.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_followers_converge_independently() {
    let dir = tmp_dir("fanout");
    let lp = paths_in(&dir, "leader");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..50i64 {
        store.insert("t", row![i, format!("x{i}")]).unwrap();
    }
    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();

    let mut running = Vec::new();
    for role in ["f1", "f2"] {
        let fp = paths_in(&dir, role);
        let (follower, _) = Follower::open(fp, fc.clone()).unwrap();
        running.push(spawn_follower(follower, addr.clone()));
    }
    for (status, _, _) in &running {
        wait_for_catchup(status, &store, &lp);
    }
    // catch-up is observed follower-side; the leader records an ack only
    // once its session thread has *read* the frame, so wait for that too
    wait_until(
        "both followers seen and acked",
        Duration::from_secs(5),
        || {
            let status = leader.status();
            status.followers() == 2 && status.min_acked().is_some()
        },
    );
    let min = leader.status().min_acked().expect("followers acked");
    let (tip_seg, _) = leader.status().tip();
    assert!(min.segment <= tip_seg);

    for (_, stop, _) in &running {
        stop.store(true, Ordering::SeqCst);
    }
    for (_, _, handle) in running {
        let (follower, result) = handle.join().unwrap();
        result.unwrap();
        assert_eq!(
            follower.db().canonical_bytes(),
            store.db().canonical_bytes()
        );
    }
    leader.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn promoted_follower_continues_the_log_and_accepts_writes() {
    let dir = tmp_dir("promote");
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..25i64 {
        store.insert("t", row![i, format!("v{i}")]).unwrap();
    }
    store.checkpoint().unwrap();
    for i in 25..35i64 {
        store.insert("t", row![i, format!("w{i}")]).unwrap();
    }

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();
    let (follower, _) = Follower::open(fp.clone(), fc).unwrap();
    let (status, stop, handle) = spawn_follower(follower, addr);
    wait_for_catchup(&status, &store, &lp);
    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap();
    let expected = store.db().canonical_bytes();
    leader.shutdown();

    // failover: the old leader is gone; promote the replica
    let epoch_before = follower.cursor().segment;
    let (mut promoted, report) = follower
        .promote(SyncPolicy::OsOnly, SegmentRetention::Keep(4))
        .unwrap();
    assert!(report.snapshot_loaded);
    assert!(!report.torn_tail);
    assert_eq!(promoted.db().canonical_bytes(), expected);
    assert_eq!(promoted.epoch(), epoch_before);

    // the promoted store accepts writes and checkpoints under the same
    // epoch sequence
    promoted
        .insert("t", row![1000i64, "post-failover"])
        .unwrap();
    promoted.checkpoint().unwrap();
    let after = promoted.db().canonical_bytes();
    drop(promoted);
    let (reopened, _) = LoggedDatabase::open_with_retention(
        &fp.snapshot,
        &fp.wal,
        SyncPolicy::OsOnly,
        SegmentRetention::Keep(4),
    )
    .unwrap();
    assert_eq!(reopened.db().canonical_bytes(), after);
    std::fs::remove_dir_all(&dir).ok();
}
