//! Crash-convergence matrix for WAL-shipping replication.
//!
//! For every failpoint site in the replication protocol — leader and
//! follower — this harness injects a crash at exactly that step, lets the
//! pair recover (leader sessions die and the follower reconnects; follower
//! crashes are recovered by re-opening from local disk, exactly like a
//! process restart), and asserts:
//!
//! 1. recovery never loses acknowledged progress: the re-opened follower's
//!    cursor is at or past the cursor it had applied when it "crashed";
//! 2. after resuming, the follower converges to the leader byte-for-byte
//!    (`Database::canonical_bytes`).
//!
//! Requires the `failpoints` feature, which the workspace root enables for
//! its dev-dependencies (see `Cargo.toml`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use qatk_repl::prelude::*;
use qatk_store::failpoint;
use qatk_store::prelude::*;

/// Failpoints are process-global; every test that arms them serializes
/// through this lock.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn failpoint_guard() -> MutexGuard<'static, ()> {
    FAILPOINTS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Every crash site on the leader's streaming path.
const LEADER_SITES: &[&str] = &[
    "repl.leader.before_hello_ok",
    "repl.leader.before_snapshot",
    "repl.leader.before_watermark",
    "repl.leader.before_seal",
    "repl.leader.before_chunk",
    "repl.leader.before_tip",
];

/// Every crash site on the follower's apply path.
const FOLLOWER_SITES: &[&str] = &[
    "repl.follower.before_hello",
    "repl.follower.install_snapshot",
    "repl.follower.append_chunk",
    "repl.follower.before_replay",
    "repl.follower.before_seal_sync",
    "repl.follower.before_watermark_save",
    "repl.follower.before_watermark_prune",
    "repl.follower.before_ack",
];

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qatk_replcrash_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn paths_in(dir: &std::path::Path, role: &str) -> ReplPaths {
    let sub = dir.join(role);
    std::fs::create_dir_all(&sub).unwrap();
    ReplPaths::new(sub.join("snap.qdb"), sub.join("wal.log"))
}

/// A leader store with a schema already folded into its snapshot (DDL is
/// not WAL-logged) and segment retention deep enough for resumption.
fn leader_store(paths: &ReplPaths) -> LoggedDatabase {
    let (mut store, _) = LoggedDatabase::open_with_retention(
        &paths.snapshot,
        &paths.wal,
        SyncPolicy::OsOnly,
        SegmentRetention::Keep(8),
    )
    .unwrap();
    let schema = SchemaBuilder::new()
        .pk("id", DataType::Int)
        .col("body", DataType::Text)
        .build()
        .unwrap();
    store.create_table("t", schema).unwrap();
    store.checkpoint().unwrap();
    store
}

fn test_config() -> (LeaderConfig, FollowerConfig) {
    let leader = LeaderConfig {
        poll_interval: Duration::from_millis(5),
        chunk_bytes: 512,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(2),
    };
    let follower = FollowerConfig {
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        reconnect_backoff: Duration::from_millis(10),
        sync_each_chunk: false,
    };
    (leader, follower)
}

#[allow(clippy::type_complexity)]
fn spawn_follower(
    follower: Follower,
    addr: String,
) -> (
    Arc<ReplicaStatus>,
    Arc<AtomicBool>,
    std::thread::JoinHandle<(Follower, ReplResult<()>)>,
) {
    let status = follower.status();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut f = follower;
        let r = f.run(&addr, &stop2, &mut |_db, _cursor| {});
        (f, r)
    });
    (status, stop, handle)
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wal_len(paths: &ReplPaths) -> u64 {
    std::fs::metadata(&paths.wal).map(|m| m.len()).unwrap_or(0)
}

fn wait_for_catchup(site: &str, status: &ReplicaStatus, store: &LoggedDatabase, lp: &ReplPaths) {
    let target = ReplCursor {
        watermark: 0,
        segment: store.epoch(),
        offset: wal_len(lp),
    };
    wait_until(
        &format!("catch-up after crash at {site}"),
        Duration::from_secs(20),
        || status.applied().at_or_past(&target),
    );
    wait_until(
        &format!("watermark after crash at {site}"),
        Duration::from_secs(20),
        || status.applied().watermark == store.epoch(),
    );
}

/// The workload every scenario drives while (or after) the crash fires: it
/// reaches every frame type — chunks (DML), a seal + watermark advance
/// (live checkpoint), and tips (idle heartbeats between phases).
fn drive_leader_workload(store: &mut LoggedDatabase) {
    for i in 30..60i64 {
        store.insert("t", row![i, format!("live-{i}")]).unwrap();
    }
    store.checkpoint().unwrap();
    for i in 0..15i64 {
        store
            .update("t", &Value::Int(i), row![i, format!("upd-{i}")])
            .unwrap();
    }
    store.delete("t", &Value::Int(29)).unwrap();
}

/// Crash the LEADER session at `site`. The session thread dies mid-protocol;
/// the follower sees a disconnect, reconnects with its cursor, and must
/// still converge byte-for-byte.
fn leader_crash_scenario(site: &str) {
    let dir = tmp_dir(&site.replace('.', "_"));
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..30i64 {
        store.insert("t", row![i, format!("pre-{i}")]).unwrap();
    }

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();
    failpoint::arm(site, 0);
    let (follower, _) = Follower::open(fp.clone(), fc).unwrap();
    let (status, stop, handle) = spawn_follower(follower, addr);

    // Let the follower reach the pre-workload tip (unless the armed site
    // already crashed the exchange) so the checkpoint below is guaranteed
    // to seal a segment the follower is mid-stream in — otherwise a fresh
    // follower would be seeded past it and the seal/watermark steps would
    // never run.
    let pre_tip = ReplCursor {
        watermark: 0,
        segment: store.epoch(),
        offset: wal_len(&lp),
    };
    wait_until(
        &format!("pre-workload catch-up or crash at {site}"),
        Duration::from_secs(20),
        || failpoint::armed() == 0 || status.applied().at_or_past(&pre_tip),
    );
    drive_leader_workload(&mut store);
    wait_until(
        &format!("failpoint {site} to fire"),
        Duration::from_secs(20),
        || failpoint::armed() == 0,
    );
    wait_for_catchup(site, &status, &store, &lp);

    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap_or_else(|e| panic!("follower failed after leader crash at {site}: {e}"));
    assert_eq!(
        follower.db().canonical_bytes(),
        store.db().canonical_bytes(),
        "divergence after leader crash at {site}"
    );
    assert!(
        leader.status().sessions_started() >= 2,
        "leader session did not die and restart at {site}"
    );
    leader.shutdown();
    failpoint::disarm_all();
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash the FOLLOWER at `site`, then recover it from local disk exactly
/// like a process restart and let it resume. Recovery must preserve applied
/// progress and the resumed replica must converge byte-for-byte.
fn follower_crash_scenario(site: &str) {
    let dir = tmp_dir(&site.replace('.', "_"));
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..30i64 {
        store.insert("t", row![i, format!("pre-{i}")]).unwrap();
    }

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();
    failpoint::arm(site, 0);
    let (follower, _) = Follower::open(fp.clone(), fc.clone()).unwrap();
    let (status, _stop, handle) = spawn_follower(follower, addr.clone());

    // As in the leader scenarios: reach the pre-workload tip first (unless
    // the site already fired), so the seal and watermark frames from the
    // live checkpoint actually traverse the attached follower.
    let pre_tip = ReplCursor {
        watermark: 0,
        segment: store.epoch(),
        offset: wal_len(&lp),
    };
    wait_until(
        &format!("pre-workload catch-up or crash at {site}"),
        Duration::from_secs(20),
        || failpoint::armed() == 0 || status.applied().at_or_past(&pre_tip),
    );
    drive_leader_workload(&mut store);

    // The injected failure is non-retryable, so run() surfaces it — the
    // "crash". Everything applied before it is on the follower's disk.
    let (crashed, result) = handle.join().unwrap();
    match result {
        Err(ReplError::Store(StoreError::Injected(s))) => assert_eq!(&s, site),
        other => panic!("expected injected crash at {site}, got {other:?}"),
    }
    let crash_cursor = crashed.cursor();
    drop(crashed);

    // Process restart: recover from local files alone.
    let (follower, report) = Follower::open(fp.clone(), fc).unwrap();
    assert!(
        report.cursor.at_or_past(&crash_cursor),
        "recovery at {site} lost applied progress: recovered {} < crashed {}",
        report.cursor,
        crash_cursor
    );

    let (status, stop, handle) = spawn_follower(follower, addr);
    wait_for_catchup(site, &status, &store, &lp);
    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap_or_else(|e| panic!("follower failed to resume after crash at {site}: {e}"));
    assert_eq!(
        follower.db().canonical_bytes(),
        store.db().canonical_bytes(),
        "divergence after follower crash at {site}"
    );
    leader.shutdown();
    failpoint::disarm_all();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leader_crash_at_every_protocol_step_converges() {
    let _guard = failpoint_guard();
    failpoint::disarm_all();
    for site in LEADER_SITES {
        leader_crash_scenario(site);
    }
}

#[test]
fn follower_crash_at_every_protocol_step_recovers_and_converges() {
    let _guard = failpoint_guard();
    failpoint::disarm_all();
    for site in FOLLOWER_SITES {
        follower_crash_scenario(site);
    }
}

/// A compound disaster: the follower crashes mid-apply, and while it is
/// down the leader checkpoints twice more so the exact segment the follower
/// stopped in is still retained — resumption must splice seamlessly. Then
/// the leader "dies" and the follower is promoted; the promoted store must
/// hold every acknowledged write.
#[test]
fn crash_then_leader_loss_then_promotion_preserves_acked_writes() {
    let _guard = failpoint_guard();
    failpoint::disarm_all();
    let dir = tmp_dir("promote_after_crash");
    let lp = paths_in(&dir, "leader");
    let fp = paths_in(&dir, "follower");
    let (lc, fc) = test_config();
    let mut store = leader_store(&lp);
    for i in 0..30i64 {
        store.insert("t", row![i, format!("pre-{i}")]).unwrap();
    }

    let leader = Leader::bind("127.0.0.1:0", lp.clone(), lc).unwrap();
    let addr = leader.local_addr().to_string();
    failpoint::arm("repl.follower.before_replay", 0);
    let (follower, _) = Follower::open(fp.clone(), fc.clone()).unwrap();
    let (_status, _stop, handle) = spawn_follower(follower, addr.clone());
    let (crashed, result) = handle.join().unwrap();
    assert!(result.is_err());
    drop(crashed);

    // Leader life goes on while the replica is down.
    drive_leader_workload(&mut store);
    store.checkpoint().unwrap();
    for i in 100..120i64 {
        store.insert("t", row![i, format!("late-{i}")]).unwrap();
    }

    // Replica restarts, resumes, catches all the way up.
    let (follower, _) = Follower::open(fp.clone(), fc).unwrap();
    let (status, stop, handle) = spawn_follower(follower, addr);
    wait_for_catchup("promotion scenario", &status, &store, &lp);
    stop.store(true, Ordering::SeqCst);
    let (follower, result) = handle.join().unwrap();
    result.unwrap();
    let expected = store.db().canonical_bytes();
    leader.shutdown();

    let epoch = follower.cursor().segment;
    let (mut promoted, _) = follower
        .promote(SyncPolicy::OsOnly, SegmentRetention::Keep(8))
        .unwrap();
    assert_eq!(promoted.db().canonical_bytes(), expected);
    assert_eq!(promoted.epoch(), epoch);
    promoted
        .insert("t", row![999i64, "after-failover"])
        .unwrap();
    promoted.checkpoint().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
