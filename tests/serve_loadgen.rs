//! Load-generator determinism and sanity (ISSUE 6 satellite 4): the same
//! seed must drive byte-identical workloads — equal request counts, equal
//! per-status tallies, equal request-byte histogram buckets — across two
//! closed-loop runs. Latency *values* are wall-clock and excluded from the
//! determinism contract; their counts are not.

use std::sync::Arc;
use std::time::Duration;

use qatk_serve::http::Request;
use qatk_serve::loadgen;
use qatk_serve::{
    Handler, LoadgenConfig, Method, Mode, RequestTemplate, Response, Server, ServerConfig,
};

struct EchoRouter;

impl Handler for EchoRouter {
    fn handle(&self, req: &Request) -> Response {
        match (req.method.clone(), req.path()) {
            (Method::Get, "/ping") => Response::text(200, "pong"),
            (Method::Post, "/echo") => {
                Response::new(200, "application/octet-stream", req.body.clone())
            }
            (Method::Post, "/missing") => Response::error_json(404, "gone"),
            _ => Response::error_json(404, "no such endpoint"),
        }
    }
}

fn server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
        Arc::new(EchoRouter),
    )
    .expect("bind loopback")
}

/// Bodies sized into distinct log2 buckets, so a changed workload shows up
/// in the request-byte histogram, plus a deliberate 404 template so status
/// tallies carry signal too.
fn templates() -> Vec<RequestTemplate> {
    vec![
        RequestTemplate::get("/ping"),
        RequestTemplate::post("/echo", "x".repeat(24)),
        RequestTemplate::post("/echo", "y".repeat(100)),
        RequestTemplate::post("/echo", "z".repeat(700)),
        RequestTemplate::post("/missing", "{}"),
    ]
}

fn config(addr: String, seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        connections: 3,
        total_requests: 200,
        mode: Mode::Closed,
        seed,
        timeout: Duration::from_secs(10),
        collect_raw: false,
    }
}

#[test]
fn same_seed_same_workload_across_runs() {
    let server = server();
    let addr = server.local_addr().to_string();
    let t = templates();
    let a = loadgen::run(&config(addr.clone(), 7), &t);
    let b = loadgen::run(&config(addr.clone(), 7), &t);

    assert_eq!(a.requests, 200);
    assert_eq!(
        a.failed, 0,
        "loopback closed-loop run must not drop requests"
    );
    assert_eq!(a.requests, b.requests);
    assert_eq!(
        a.status_counts, b.status_counts,
        "per-status tallies differ"
    );
    assert_eq!(
        a.request_bytes.bucket_counts(),
        b.request_bytes.bucket_counts(),
        "request-byte histograms differ: the workload was not deterministic"
    );
    assert_eq!(a.latency.count(), b.latency.count());
    // the 404 template is part of the mix, so both tallies must show it
    assert!(a.status_counts.get(&404).copied().unwrap_or(0) > 0);
    assert!(a.status_counts.get(&200).copied().unwrap_or(0) > 0);
    server.shutdown();
}

#[test]
fn latency_histogram_has_nonzero_tail_quantiles() {
    let server = server();
    let addr = server.local_addr().to_string();
    let t = templates();
    let mut cfg = config(addr, 42);
    cfg.collect_raw = true;
    let report = loadgen::run(&cfg, &t);

    assert_eq!(report.failed, 0);
    assert!(report.p50_ns() > 0, "p50 must be a real latency");
    assert!(report.p999_ns() > 0, "p999 must be a real latency");
    assert!(report.p999_ns() >= report.p99_ns());
    assert!(report.p99_ns() >= report.p50_ns());
    assert!(report.rps > 0.0);
    // raw collection keeps one sample per completed request
    assert_eq!(report.raw_latencies_ns.len() as u64, report.latency.count());
    // the human rendering mentions the quantiles it promises
    let text = report.render();
    assert!(text.contains("latency p999"));
    assert!(text.contains("throughput"));
    server.shutdown();
}

#[test]
fn open_loop_paces_to_the_target_qps() {
    let server = server();
    let addr = server.local_addr().to_string();
    let t = vec![RequestTemplate::get("/ping")];
    let report = loadgen::run(
        &LoadgenConfig {
            addr,
            connections: 2,
            total_requests: 120,
            mode: Mode::Open { target_qps: 400.0 },
            seed: 1,
            timeout: Duration::from_secs(10),
            collect_raw: false,
        },
        &t,
    );
    assert_eq!(report.requests, 120);
    assert_eq!(report.failed, 0);
    // 120 requests at 400 QPS is 300 ms of schedule: the run must take at
    // least that long (pacing) and nowhere near closed-loop speed
    assert!(
        report.elapsed >= Duration::from_millis(250),
        "open loop finished too fast: {:?} — pacing is not happening",
        report.elapsed
    );
    // and the achieved rate must be at or below the offered rate (plus
    // scheduling slack) — an open loop never exceeds its target
    assert!(
        report.rps <= 500.0,
        "open loop overshot the target: {} req/s",
        report.rps
    );
    server.shutdown();
}

#[test]
fn transport_failures_are_counted_not_fatal() {
    // point the generator at a dead port: every request fails, none panic
    let dead = {
        // bind-then-drop to find a port that is very likely unused
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let report = loadgen::run(
        &LoadgenConfig {
            addr: dead,
            connections: 2,
            total_requests: 10,
            mode: Mode::Closed,
            seed: 3,
            timeout: Duration::from_millis(300),
            collect_raw: false,
        },
        &[RequestTemplate::get("/ping")],
    );
    assert_eq!(report.requests, 10);
    assert_eq!(report.failed, 10);
    assert_eq!(report.ok, 0);
}
