//! Cross-crate integration: the full QUEST/QATK path from corpus generation
//! through relational persistence, pipeline processing, knowledge-base
//! training, recommendation, assignment and snapshot durability.

use quest_qatk::prelude::*;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig::small(99))
}

#[test]
fn corpus_survives_relational_persistence_and_classifies() {
    let c = corpus();
    // persist raw data relationally, then snapshot to bytes and back
    let mut db = Database::new();
    save_corpus(&c, &mut db).unwrap();
    let db2 = Database::from_bytes(&db.to_bytes()).unwrap();
    let bundles = load_bundles(&db2).unwrap();
    assert_eq!(bundles.len(), c.bundles.len());

    // train from the reloaded bundles via the core pipeline primitives
    let pipeline = build_pipeline(&c, FeatureModel::BagOfConcepts);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for b in &bundles {
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).unwrap();
        let f = space.extract(&cas, FeatureModel::BagOfConcepts);
        kb.insert(b.part_id.clone(), b.error_code.clone().unwrap(), f);
    }
    assert!(!kb.is_empty());
    assert!(kb.len() <= bundles.len());

    // the knowledge base itself persists relationally too (paper §4.4 3b)
    let mut kdb = Database::new();
    kb.save_to_db(&mut kdb).unwrap();
    let kb2 = KnowledgeBase::load_from_db(&kdb).unwrap();
    assert_eq!(kb2.len(), kb.len());

    // classify one bundle with the reloaded KB
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
    let b = &bundles[0];
    let mut cas = b.to_cas(SourceSelection::Test);
    pipeline.process(&mut cas).unwrap();
    let f = space.extract(&cas, FeatureModel::BagOfConcepts);
    let ranked = knn.rank(&kb2, &b.part_id, &f);
    assert!(!ranked.is_empty());
}

#[test]
fn service_workflow_assignment_roundtrip() {
    let c = corpus();
    let mut users = UserRegistry::new();
    users.add("anna", Role::QualityExpert).unwrap();

    let svc =
        RecommendationService::train(&c, FeatureModel::BagOfConcepts, SimilarityMeasure::Jaccard);
    let mut db = Database::new();

    // drive the Fig. 2 workflow for one incoming part
    let incoming = c.bundles[5].clone();
    let mut case = EvaluationCase::register("R-IT-1", incoming.part_id.clone(), "system");
    case.add_mechanic_report("shop", &incoming.mechanic_report)
        .unwrap();
    case.add_supplier_report("sup", &incoming.supplier_report, "RC-1")
        .unwrap();

    let suggestions = svc.suggest(&incoming);
    assert!(!suggestions.top.is_empty());
    svc.persist_suggestions(&mut db, &suggestions).unwrap();
    let chosen = suggestions.top[0].code.clone();
    svc.assign(&mut db, &users, "anna", &incoming, &chosen)
        .unwrap();
    case.finalize("anna", &chosen, "done").unwrap();
    assert_eq!(case.stage(), Stage::Finalized);

    // the whole state snapshot (recommendations + assignment) round-trips
    let db2 = Database::from_bytes(&db.to_bytes()).unwrap();
    assert_eq!(
        db2.table(quest::service::tables::ASSIGNMENTS)
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        db2.table(quest::service::tables::RECOMMENDATIONS)
            .unwrap()
            .len(),
        suggestions.top.len()
    );
}

#[test]
fn taxonomy_xml_file_roundtrip_feeds_annotator() {
    let c = corpus();
    let tax = &c.taxonomy.taxonomy;
    // write the taxonomy to its XML format on disk, re-read, and use it
    let dir = std::env::temp_dir().join("quest_qatk_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("taxonomy.xml");
    std::fs::write(&path, write_taxonomy(tax)).unwrap();
    let xml = std::fs::read_to_string(&path).unwrap();
    let reloaded = parse_taxonomy(&xml).unwrap();
    assert_eq!(&reloaded, tax);

    let annotator = ConceptAnnotator::new(&reloaded);
    let mut cas = c.bundles[0].to_cas(SourceSelection::Training);
    WhitespaceTokenizer::new().process(&mut cas).unwrap();
    annotator.process(&mut cas).unwrap();
    assert!(cas.concept_mentions().count() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn nhtsa_comparison_produces_renderable_report() {
    let c = corpus();
    let complaints = generate_complaints(
        &c,
        &NhtsaConfig {
            n_complaints: 150,
            ..NhtsaConfig::default()
        },
    );
    let svc =
        RecommendationService::train(&c, FeatureModel::BagOfConcepts, SimilarityMeasure::Jaccard);
    let internal = c.bundles.iter().filter_map(|b| b.error_code.clone());
    let report = compare_with_complaints(&svc, internal, &complaints, 3);
    let text = report.render();
    assert!(text.contains("Other"));
    assert!(report.left.total > 0 && report.right.total > 0);
}

#[test]
fn facade_prelude_is_coherent() {
    // every major type is reachable from the single prelude
    let _c: CorpusConfig = CorpusConfig::small(1);
    let _m: FeatureModel = FeatureModel::BagOfConcepts;
    let _s: SimilarityMeasure = SimilarityMeasure::Jaccard;
    let _k = KnowledgeBase::new();
    let _d = Database::new();
    let _u = UserRegistry::new();
    let _t = TokenTrie::new();
}
