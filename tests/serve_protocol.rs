//! Malformed-request matrix for the serving layer (ISSUE 6 satellite 2):
//! every row of the DESIGN.md §10 error-code contract, exercised over real
//! sockets against a running [`qatk_serve::Server`] — oversized heads and
//! bodies, missing/malformed/conflicting `Content-Length`, bad
//! method/target/version tokens, pipelined requests, a slowloris stall, the
//! accept-gate 503, and a handler panic. Each case asserts both the status
//! code and whether the connection was closed or kept, per spec.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use qatk_serve::http::Limits;
use qatk_serve::{Handler, HttpClient, Method, Request, Response, Server, ServerConfig};

/// Minimal router with the same routing conventions as the QUEST app: one
/// GET endpoint, one POST endpoint, a panic trigger, 404/405 for the rest.
struct TestRouter;

impl Handler for TestRouter {
    fn handle(&self, req: &Request) -> Response {
        match (req.method.clone(), req.path()) {
            (Method::Get | Method::Head, "/ping") => Response::text(200, "pong"),
            (Method::Post, "/echo") => {
                Response::new(200, "application/octet-stream", req.body.clone())
            }
            (_, "/ping") => Response::error_json(405, "use GET").with_allow("GET, HEAD"),
            (_, "/echo") => Response::error_json(405, "use POST").with_allow("POST"),
            (_, "/panic") => panic!("deliberate handler panic"),
            _ => Response::error_json(404, "no such endpoint"),
        }
    }
}

fn server(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", config, Arc::new(TestRouter)).expect("bind loopback")
}

fn default_server() -> Server {
    server(ServerConfig::default())
}

/// Write raw bytes, then read until the peer closes. Returns everything the
/// server sent — for cases where the connection must end in a close.
fn raw_until_close(server: &Server, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out)
        .expect("server should close the connection");
    String::from_utf8_lossy(&out).into_owned()
}

fn status_of(response: &str) -> u16 {
    response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r[..3].parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"))
}

#[test]
fn malformed_request_line_matrix() {
    let server = default_server();
    // (wire bytes, expected status): every request-line defect is a 400
    let cases: &[(&[u8], u16)] = &[
        (b"GE T / HTTP/1.1\r\n\r\n", 400),       // space in method
        (b"GET nopath HTTP/1.1\r\n\r\n", 400),   // target missing /
        (b"GET /x HTTP/2.0\r\n\r\n", 400),       // unsupported version
        (b"GET /x HTTP/1.1 extra\r\n\r\n", 400), // four fields
        (b"GET /\x01 HTTP/1.1\r\n\r\n", 400),    // control byte in target
        (b"\x16\x03\x01\x02\x00\x01\x00\x01\xfc\r\n\r\n", 400), // a TLS ClientHello
    ];
    for (bytes, want) in cases {
        let resp = raw_until_close(&server, bytes);
        assert_eq!(status_of(&resp), *want, "for {bytes:?}");
        assert!(resp.contains("Connection: close"), "for {bytes:?}");
    }
}

#[test]
fn malformed_header_matrix() {
    let server = default_server();
    let cases: &[(&[u8], u16)] = &[
        (b"GET /ping HTTP/1.1\r\nBad Header: x\r\n\r\n", 400), // space in name
        (b"GET /ping HTTP/1.1\r\nNoColon\r\n\r\n", 400),       // no colon
        (b"GET /ping HTTP/1.1\r\nA: b\r\n folded\r\n\r\n", 400), // obs-fold
        (b"POST /echo HTTP/1.1\r\nContent-Length: nine\r\n\r\n", 400),
        (
            b"POST /echo HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx",
            400,
        ),
        (
            b"POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            400,
        ),
        (b"POST /echo HTTP/1.1\r\n\r\n", 411), // POST without Content-Length
    ];
    for (bytes, want) in cases {
        let resp = raw_until_close(&server, bytes);
        assert_eq!(status_of(&resp), *want, "for {bytes:?}");
        assert!(resp.contains("Connection: close"), "for {bytes:?}");
    }
}

#[test]
fn oversized_body_rejected_before_it_arrives() {
    let server = server(ServerConfig {
        limits: Limits {
            max_head_bytes: 1024,
            max_body_bytes: 64,
        },
        ..ServerConfig::default()
    });
    // declare an over-limit body but send none of it: the 413 must come from
    // the declaration alone
    let resp = raw_until_close(
        &server,
        b"POST /echo HTTP/1.1\r\nContent-Length: 65\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 413);
    assert!(resp.contains("Connection: close"));
    // at the limit is fine
    let body = vec![b'a'; 64];
    let mut req =
        b"POST /echo HTTP/1.1\r\nContent-Length: 64\r\nConnection: close\r\n\r\n".to_vec();
    req.extend_from_slice(&body);
    let resp = raw_until_close(&server, &req);
    assert_eq!(status_of(&resp), 200);
}

#[test]
fn oversized_head_rejected_incrementally() {
    let server = server(ServerConfig {
        limits: Limits {
            max_head_bytes: 256,
            max_body_bytes: 1024,
        },
        ..ServerConfig::default()
    });
    // no terminator ever sent: the 431 must fire from sheer head size.
    // Read between writes — writing past the server's close draws an RST
    // that would discard the buffered 431.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    s.write_all(b"GET /ping HTTP/1.1\r\n").unwrap();
    let mut probe = [0u8; 1024];
    for i in 0..60 {
        if s.write_all(b"X-Padding: aaaaaaaaaaaaaaaa\r\n").is_err() {
            panic!("server closed without sending the 431 (after {i} chunks)");
        }
        match s.read(&mut probe) {
            Ok(n) if n > 0 => {
                let resp = String::from_utf8_lossy(&probe[..n]);
                assert_eq!(status_of(&resp), 431);
                assert!(resp.contains("Connection: close"));
                return;
            }
            Ok(_) => panic!("server closed without sending the 431"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("unexpected read error before the 431: {e}"),
        }
    }
    panic!("server never rejected the oversized head");
}

#[test]
fn unknown_path_and_wrong_method_keep_the_connection() {
    let server = default_server();
    let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let r = c.request("GET", "/nope", None).unwrap();
    assert_eq!(r.status, 404);
    assert!(!r.close(), "404 is a routed response; keep-alive holds");
    let r = c.request("POST", "/ping", Some("{}")).unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET, HEAD"));
    assert!(!r.close());
    // same connection still serves real requests
    let r = c.request("GET", "/ping", None).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, b"pong");
}

#[test]
fn pipelined_requests_answered_in_order() {
    let server = default_server();
    let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    // two requests in one write; responses must come back in order
    c.send_raw(b"POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirstGET /ping HTTP/1.1\r\n\r\n")
        .unwrap();
    let r1 = c.read_response().unwrap();
    assert_eq!(r1.status, 200);
    assert_eq!(r1.body, b"first");
    let r2 = c.read_response().unwrap();
    assert_eq!(r2.status, 200);
    assert_eq!(r2.body, b"pong");
}

#[test]
fn head_request_gets_length_but_no_body() {
    let server = default_server();
    let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    c.send_raw(b"HEAD /ping HTTP/1.1\r\n\r\nGET /ping HTTP/1.1\r\n\r\n")
        .unwrap();
    // if the HEAD response had carried a body, this read would swallow the
    // next response's status line and fail
    let head = c.read_response_head_only().unwrap();
    assert_eq!(head.status, 200);
    assert_eq!(head.header("content-length"), Some("4"));
    assert!(
        head.body.is_empty(),
        "client honours HEAD framing: no body read"
    );
    let follow = c.read_response().unwrap();
    assert_eq!(follow.status, 200);
    assert_eq!(follow.body, b"pong");
}

#[test]
fn slowloris_stall_gets_408_and_close() {
    let server = server(ServerConfig {
        read_timeout: Duration::from_millis(200),
        header_deadline: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // half a request line, then silence
    s.write_all(b"GET /pi").unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let resp = String::from_utf8_lossy(&out);
    assert_eq!(status_of(&resp), 408);
    assert!(resp.contains("Connection: close"));
}

#[test]
fn trickling_head_is_cut_by_the_header_deadline() {
    let server = server(ServerConfig {
        read_timeout: Duration::from_millis(300),
        header_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    s.write_all(b"GET /ping HTTP/1.1\r\n").unwrap();
    // keep the per-read timeout from firing by trickling a byte at a time;
    // only the total head deadline can stop this
    let start = std::time::Instant::now();
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "server never cut the trickling head"
        );
        if s.write_all(b"X").is_err() {
            return; // server cut the connection — the deadline worked
        }
        std::thread::sleep(Duration::from_millis(50));
        let mut probe = [0u8; 1024];
        match s.read(&mut probe) {
            Ok(0) => return, // closed without a readable 408 (RST raced it)
            Ok(n) => {
                let resp = String::from_utf8_lossy(&probe[..n]);
                assert_eq!(status_of(&resp), 408);
                return;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // no verdict yet — keep trickling
            }
            Err(_) => return,
        }
    }
}

#[test]
fn idle_keep_alive_closes_silently() {
    let server = server(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let r = c.request("GET", "/ping", None).unwrap();
    assert_eq!(r.status, 200);
    // no request in flight: the idle timeout must close without a 408 —
    // there is no request to answer
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    assert!(
        out.is_empty(),
        "idle close must not write a response: {out:?}"
    );
}

#[test]
fn accept_gate_answers_503_over_capacity() {
    let server = server(ServerConfig {
        threads: 1,
        max_in_flight: 1,
        ..ServerConfig::default()
    });
    // the first connection occupies the single admission slot
    let mut c1 = HttpClient::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let r = c1.request("GET", "/ping", None).unwrap();
    assert_eq!(r.status, 200);
    // the second must be bounced at the gate, not queued forever
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let resp = String::from_utf8_lossy(&out);
    assert_eq!(status_of(&resp), 503);
    assert!(resp.contains("Connection: close"));
    // once the first connection is gone, the slot frees up
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(8);
    loop {
        let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(2)).unwrap();
        match c.request("GET", "/ping", None) {
            Ok(r) if r.status == 200 => break,
            _ if std::time::Instant::now() > deadline => panic!("slot never freed"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn handler_panic_maps_to_500_and_close() {
    let server = default_server();
    let resp = raw_until_close(&server, b"GET /panic HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&resp), 500);
    assert!(resp.contains("Connection: close"));
    // the worker survived the panic: the server still serves
    let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let r = c.request("GET", "/ping", None).unwrap();
    assert_eq!(r.status, 200);
}

#[test]
fn connection_close_header_is_honoured() {
    let server = default_server();
    let resp = raw_until_close(&server, b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("Connection: close"));
    // HTTP/1.0 defaults to close as well
    let resp = raw_until_close(&server, b"GET /ping HTTP/1.0\r\n\r\n");
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("Connection: close"));
}
