//! Integration: the QUEST result-persistence path survives crashes — the
//! recommendation/assignment tables flow through the write-ahead log and
//! recover from snapshot + log, with the corpus tables intact.
//!
//! The second half of this file is the crash-point recovery harness: it
//! arms every failpoint site in the store's durability paths (the root
//! crate's dev-dependency on `qatk-store` enables the `failpoints`
//! feature), "crashes" a randomized insert/update/delete/checkpoint
//! workload at that site, recovers, and asserts the recovered database
//! equals the acknowledged prefix byte-for-byte via the canonical codec
//! encoding.

use quest_qatk::prelude::*;
use quest_qatk::store::row;
use quest_qatk::store::wal::LoggedDatabase;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("quest_qatk_durability");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}_{}", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

#[test]
fn assignments_survive_snapshot_plus_wal_recovery() {
    let snap = tmp("snapshot.qdb");
    let wal = tmp("ops.wal");

    // day 0: the corpus is snapshotted once
    let corpus = Corpus::generate(CorpusConfig::small(77));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).unwrap();
    let schema = SchemaBuilder::new()
        .pk("reference_number", DataType::Text)
        .col("error_code", DataType::Text)
        .col("assigned_by", DataType::Text)
        .build()
        .unwrap();
    db.create_table("assignments", schema).unwrap();
    db.save(&snap).unwrap();

    // working day: assignments land in the log, not in a new snapshot
    let mut logged = LoggedDatabase::new(Database::load(&snap).unwrap(), &wal).unwrap();
    for b in corpus.bundles.iter().take(20) {
        logged
            .insert(
                "assignments",
                row![
                    b.reference_number.clone(),
                    b.error_code.clone().unwrap(),
                    "anna"
                ],
            )
            .unwrap();
    }
    // one correction: re-coded after review
    let first_ref = corpus.bundles[0].reference_number.clone();
    let corrected = corpus.bundles[1].error_code.clone().unwrap();
    logged
        .update(
            "assignments",
            &Value::from(first_ref.as_str()),
            row![first_ref.clone(), corrected.clone(), "root"],
        )
        .unwrap();
    // one withdrawal
    let second_ref = corpus.bundles[1].reference_number.clone();
    logged
        .delete("assignments", &Value::from(second_ref.as_str()))
        .unwrap();
    drop(logged); // "crash"

    // recovery: snapshot + log replay
    let recovered = LoggedDatabase::recover(&snap, &wal).unwrap();
    assert_eq!(recovered.table("assignments").unwrap().len(), 19);
    let r = recovered
        .get("assignments", &Value::from(first_ref.as_str()))
        .unwrap()
        .unwrap();
    assert_eq!(r.get(1).and_then(Value::as_text), Some(corrected.as_str()));
    assert_eq!(r.get(2).and_then(Value::as_text), Some("root"));
    assert!(recovered
        .get("assignments", &Value::from(second_ref.as_str()))
        .unwrap()
        .is_none());
    // the raw corpus data is untouched by the log
    assert_eq!(
        recovered.table(tables::BUNDLES).unwrap().len(),
        corpus.bundles.len()
    );

    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn complaint_flat_files_roundtrip_through_store_csv() {
    // the §5.4 interchange path: complaints → CSV flat file → store table →
    // back to complaints, then classified
    let corpus = Corpus::generate(CorpusConfig::small(78));
    let complaints = generate_complaints(
        &corpus,
        &NhtsaConfig {
            n_complaints: 40,
            ..NhtsaConfig::default()
        },
    );
    let csv = complaints_to_csv(&complaints);
    let path = tmp("complaints.csv");
    std::fs::write(&path, &csv).unwrap();

    let reloaded = complaints_from_csv(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reloaded, complaints);

    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    let classified = reloaded
        .iter()
        .filter(|c| !svc.classify_external(&c.text).is_empty())
        .count();
    assert!(classified > 0, "no complaint classified after roundtrip");
    std::fs::remove_file(&path).ok();
}

#[test]
fn aggregation_matches_frequency_baseline_over_store() {
    // GroupBy::count ranking over the bundles table must agree with the
    // CodeFrequencyBaseline trained from the same data
    let corpus = Corpus::generate(CorpusConfig::small(79));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).unwrap();
    let table = db.table(tables::BUNDLES).unwrap();

    let part = corpus.bundles[0].part_id.clone();
    let grouped = GroupBy::count("error_code")
        .filter(Cond::eq(table, "part_id", part.as_str()).unwrap())
        .run_ranked(table)
        .unwrap();

    let baseline = CodeFrequencyBaseline::train(
        corpus
            .bundles
            .iter()
            .filter_map(|b| Some((b.part_id.as_str(), b.error_code.as_deref()?))),
    );
    let expected = baseline.rank(&part);
    let got: Vec<&str> = grouped.iter().filter_map(|g| g.key.as_text()).collect();
    assert_eq!(got, expected.iter().map(String::as_str).collect::<Vec<_>>());
}

#[test]
fn join_reconstructs_the_quest_bundle_view() {
    // bundles ⋈ error_codes gives the screen's "code + description" view
    let corpus = Corpus::generate(CorpusConfig::small(80));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).unwrap();
    let bundles = db.table(tables::BUNDLES).unwrap();
    let codes = db.table(tables::ERROR_CODES).unwrap();

    let joined = Join::inner("error_code", "code")
        .run(bundles, codes)
        .unwrap();
    // every coded bundle joins to exactly one code row
    assert_eq!(joined.len(), corpus.bundles.len());
    let arity = bundles.schema().arity() + codes.schema().arity();
    for row in joined.iter().take(10) {
        assert_eq!(row.arity(), arity);
        // description column is the last one and non-empty
        assert!(!row
            .get(arity - 1)
            .and_then(Value::as_text)
            .unwrap()
            .is_empty());
    }
}

// ---------------------------------------------------------------------------
// Crash-point recovery harness
// ---------------------------------------------------------------------------

mod crash_harness {
    use std::path::{Path, PathBuf};
    use std::sync::{Mutex, PoisonError};

    use quest_qatk::store::failpoint;
    use quest_qatk::store::row;
    use quest_qatk::store::wal::{LoggedDatabase, SyncPolicy};
    use quest_qatk::store::{DataType, Database, SchemaBuilder, StoreError, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Failpoints are process-global; every test that arms them serializes
    /// through this lock so a concurrently running test cannot trip a site
    /// armed for someone else.
    static FAILPOINTS: Mutex<()> = Mutex::new(());

    fn failpoint_guard() -> std::sync::MutexGuard<'static, ()> {
        FAILPOINTS.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Every site the durability paths expose.
    const SITES: &[&str] = &[
        "wal.append.before_write",
        "wal.append.before_sync",
        "wal.append.after_sync",
        "persist.write_tmp",
        "persist.sync_tmp",
        "persist.rename",
        "checkpoint.begin",
        "checkpoint.mid_rotate",
        "checkpoint.before_truncate",
    ];

    #[derive(Debug, Clone)]
    enum Op {
        Insert(i64, String),
        Update(i64, String),
        Delete(i64),
        Checkpoint,
    }

    impl Op {
        /// True for DML (an op whose WAL record may survive a crash even
        /// though the caller never saw the acknowledgement).
        fn is_dml(&self) -> bool {
            !matches!(self, Op::Checkpoint)
        }
    }

    fn schema() -> quest_qatk::store::Schema {
        SchemaBuilder::new()
            .pk("id", DataType::Int)
            .col("name", DataType::Text)
            .build()
            .unwrap()
    }

    /// A deterministic workload that is valid by construction: updates and
    /// deletes only touch keys that are live at that point.
    fn gen_workload(seed: u64, n: usize) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<i64> = Vec::new();
        let mut next_pk = 0i64;
        let mut ops = Vec::with_capacity(n);
        for step in 0..n {
            if step > 0 && step % 7 == 0 {
                ops.push(Op::Checkpoint);
                continue;
            }
            let kind = rng.random_range(0..10u32);
            if kind >= 6 && !live.is_empty() {
                let at = rng.random_range(0..live.len());
                if kind >= 8 {
                    ops.push(Op::Delete(live.remove(at)));
                } else {
                    ops.push(Op::Update(live[at], format!("u{step}")));
                }
            } else {
                ops.push(Op::Insert(next_pk, format!("v{step}")));
                live.push(next_pk);
                next_pk += 1;
            }
        }
        ops
    }

    fn apply_model(db: &mut Database, op: &Op) {
        match op {
            Op::Insert(pk, name) => {
                db.insert("t", row![*pk, name.clone()]).unwrap();
            }
            Op::Update(pk, name) => {
                db.update("t", &Value::Int(*pk), row![*pk, name.clone()])
                    .unwrap();
            }
            Op::Delete(pk) => {
                db.delete("t", &Value::Int(*pk)).unwrap();
            }
            Op::Checkpoint => {}
        }
    }

    fn apply_logged(ldb: &mut LoggedDatabase, op: &Op) -> Result<(), StoreError> {
        match op {
            Op::Insert(pk, name) => ldb.insert("t", row![*pk, name.clone()]).map(|_| ()),
            Op::Update(pk, name) => ldb.update("t", &Value::Int(*pk), row![*pk, name.clone()]),
            Op::Delete(pk) => ldb.delete("t", &Value::Int(*pk)).map(|_| ()),
            Op::Checkpoint => ldb.checkpoint(),
        }
    }

    /// Canonical bytes of a fresh database with `ops` applied.
    fn model_bytes(ops: &[&Op]) -> Vec<u8> {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        for op in ops {
            apply_model(&mut db, op);
        }
        db.canonical_bytes()
    }

    struct CrashDir {
        dir: PathBuf,
        snap: PathBuf,
        wal: PathBuf,
    }

    fn crash_dir(tag: &str) -> CrashDir {
        let dir =
            std::env::temp_dir().join(format!("quest_qatk_crash_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        CrashDir {
            snap: dir.join("snap.qdb"),
            wal: dir.join("wal.log"),
            dir,
        }
    }

    impl Drop for CrashDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.dir).ok();
        }
    }

    /// Run the workload until a failpoint "crashes" it, recover, and check
    /// the recovered state against the acknowledged prefix. Returns true if
    /// the armed site actually fired.
    fn crash_and_recover(site: &str, skip: usize, seed: u64, paths: &CrashDir) -> bool {
        // setup (before arming): table lives in the snapshot, since DDL is
        // not WAL-logged
        let (mut ldb, _) =
            LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::Always).unwrap();
        ldb.create_table("t", schema()).unwrap();
        ldb.checkpoint().unwrap();

        let ops = gen_workload(seed, 34);
        failpoint::arm(site, skip);
        let mut acked: Vec<&Op> = Vec::new();
        let mut in_flight: Option<&Op> = None;
        let mut crashed = false;
        for op in &ops {
            match apply_logged(&mut ldb, op) {
                Ok(()) => acked.push(op),
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Injected(_)),
                        "workload failed with a real error at {site}: {e}"
                    );
                    if op.is_dml() {
                        in_flight = Some(op);
                    }
                    crashed = true;
                    break;
                }
            }
        }
        drop(ldb); // the simulated kill
        failpoint::disarm_all();

        // a crash during save/checkpoint must always leave a loadable
        // snapshot
        if paths.snap.exists() {
            Database::load(&paths.snap)
                .unwrap_or_else(|e| panic!("snapshot unreadable after crash at {site}: {e}"));
        }

        let (recovered, _report) =
            LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::Always)
                .unwrap_or_else(|e| panic!("recovery failed after crash at {site}: {e}"));
        let got = recovered.db().canonical_bytes();

        // Exactly the acknowledged prefix — or, for a crash after the log
        // record reached the OS but before the ack, the prefix plus that
        // one in-flight operation. Never anything else: no lost acked
        // writes, no other resurrected ones.
        let expect_acked = model_bytes(&acked);
        if got != expect_acked {
            let with_in_flight = in_flight.map(|op| {
                let mut ops = acked.clone();
                ops.push(op);
                model_bytes(&ops)
            });
            assert_eq!(
                Some(got),
                with_in_flight,
                "crash at {site} (skip {skip}): recovered state is neither the \
                 acked prefix ({} ops) nor acked + in-flight",
                acked.len()
            );
        }
        crashed
    }

    /// The tentpole acceptance test: for every armed failpoint site and a
    /// spread of skip counts, recovery yields exactly the acknowledged
    /// prefix (modulo one logged-but-unacked in-flight op).
    #[test]
    fn every_crash_point_recovers_to_the_acked_prefix() {
        let _guard = failpoint_guard();
        let mut fired = 0usize;
        let mut runs = 0usize;
        for (i, site) in SITES.iter().enumerate() {
            for (j, &skip) in [0usize, 1, 2, 5].iter().enumerate() {
                let paths = crash_dir(&format!("{i}_{j}"));
                let seed = 1000 + (i as u64) * 17 + j as u64;
                if crash_and_recover(site, skip, seed, &paths) {
                    fired += 1;
                }
                runs += 1;
            }
        }
        // the harness is vacuous if the sites never fire
        assert!(
            fired >= runs / 2,
            "only {fired}/{runs} crash points fired — workload too short?"
        );
    }

    /// Torn-write matrix: truncate the log at *every* byte offset within
    /// the last record and assert recovery keeps exactly the records before
    /// it — never an error, never a partial record applied.
    #[test]
    fn torn_write_matrix_truncates_to_the_last_intact_record() {
        let _guard = failpoint_guard();
        let paths = crash_dir("torn_matrix");
        let (mut ldb, _) =
            LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::OsOnly).unwrap();
        ldb.create_table("t", schema()).unwrap();
        ldb.checkpoint().unwrap();
        let n = 6i64;
        let mut boundaries = vec![0u64];
        for i in 0..n {
            ldb.insert("t", row![i, format!("row-{i}-with-some-payload")])
                .unwrap();
            ldb.sync().unwrap();
            boundaries.push(std::fs::metadata(&paths.wal).unwrap().len());
        }
        drop(ldb);
        let full = std::fs::read(&paths.wal).unwrap();
        assert_eq!(full.len() as u64, *boundaries.last().unwrap());

        let last_start = boundaries[n as usize - 1];
        for cut in last_start..=full.len() as u64 {
            std::fs::write(&paths.wal, &full[..cut as usize]).unwrap();
            let (recovered, report) =
                LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::OsOnly)
                    .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
            let expected_rows = if cut == full.len() as u64 { n } else { n - 1 };
            assert_eq!(
                recovered.db().table("t").unwrap().len() as i64,
                expected_rows,
                "cut at byte {cut}"
            );
            // a cut exactly at a record boundary leaves a clean (shorter)
            // log, not a torn one
            let torn_expected = cut != full.len() as u64 && cut != last_start;
            assert_eq!(report.torn_tail, torn_expected, "cut {cut}");
            drop(recovered);
            // recovery truncated the torn bytes: the log on disk is intact
            let len_after = std::fs::metadata(&paths.wal).unwrap().len();
            assert_eq!(
                len_after,
                if cut == full.len() as u64 {
                    cut
                } else {
                    last_start
                }
            );
        }
    }

    /// Checkpoint-rotation round-trip: write → checkpoint → write → crash →
    /// recover. The snapshot's watermark keeps sealed segments from being
    /// double-applied and post-checkpoint writes come back from the log.
    #[test]
    fn checkpoint_rotation_roundtrip_recovers_both_generations() {
        let _guard = failpoint_guard();
        let paths = crash_dir("ckpt_roundtrip");
        let (mut ldb, _) =
            LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::EveryN(4)).unwrap();
        ldb.create_table("t", schema()).unwrap();
        ldb.checkpoint().unwrap();
        for i in 0..10i64 {
            ldb.insert("t", row![i, format!("gen1-{i}")]).unwrap();
        }
        ldb.checkpoint().unwrap();
        for i in 10..15i64 {
            ldb.insert("t", row![i, format!("gen2-{i}")]).unwrap();
        }
        ldb.update("t", &Value::Int(3), row![3i64, "gen2-update"])
            .unwrap();
        ldb.delete("t", &Value::Int(7)).unwrap();
        ldb.sync().unwrap();
        let expected = ldb.db().canonical_bytes();
        drop(ldb); // crash

        let (recovered, report) =
            LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::EveryN(4)).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replay_from, 2); // two checkpoints sealed epochs 0 and 1
        assert_eq!(report.records_replayed, 7); // 5 inserts + update + delete
        assert_eq!(recovered.db().canonical_bytes(), expected);
    }

    /// Mid-log corruption stays loud through the full recovery path (the
    /// regression this PR fixes: a bit-flipped length prefix used to be
    /// silently treated as a torn tail).
    #[test]
    fn recovery_rejects_mid_log_length_corruption() {
        let _guard = failpoint_guard();
        let paths = crash_dir("midlog");
        let (mut ldb, _) =
            LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::OsOnly).unwrap();
        ldb.create_table("t", schema()).unwrap();
        ldb.checkpoint().unwrap();
        for i in 0..5i64 {
            ldb.insert("t", row![i, format!("r{i}")]).unwrap();
        }
        drop(ldb);
        let mut bytes = std::fs::read(&paths.wal).unwrap();
        bytes[3] ^= 0x01; // first record's length prefix, high byte
        std::fs::write(&paths.wal, &bytes).unwrap();
        let err = LoggedDatabase::open(&paths.snap, &paths.wal, SyncPolicy::OsOnly).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt(ref m) if m.contains("implausible")),
            "expected implausible-length corruption, got {err:?}"
        );
    }

    /// Keep `Path` imported even if future edits drop direct uses above.
    #[allow(dead_code)]
    fn _uses(_: &Path) {}
}
