//! Integration: the QUEST result-persistence path survives crashes — the
//! recommendation/assignment tables flow through the write-ahead log and
//! recover from snapshot + log, with the corpus tables intact.

use quest_qatk::prelude::*;
use quest_qatk::store::row;
use quest_qatk::store::wal::LoggedDatabase;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("quest_qatk_durability");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}_{}", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

#[test]
fn assignments_survive_snapshot_plus_wal_recovery() {
    let snap = tmp("snapshot.qdb");
    let wal = tmp("ops.wal");

    // day 0: the corpus is snapshotted once
    let corpus = Corpus::generate(CorpusConfig::small(77));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).unwrap();
    let schema = SchemaBuilder::new()
        .pk("reference_number", DataType::Text)
        .col("error_code", DataType::Text)
        .col("assigned_by", DataType::Text)
        .build()
        .unwrap();
    db.create_table("assignments", schema).unwrap();
    db.save(&snap).unwrap();

    // working day: assignments land in the log, not in a new snapshot
    let mut logged = LoggedDatabase::new(Database::load(&snap).unwrap(), &wal).unwrap();
    for b in corpus.bundles.iter().take(20) {
        logged
            .insert(
                "assignments",
                row![
                    b.reference_number.clone(),
                    b.error_code.clone().unwrap(),
                    "anna"
                ],
            )
            .unwrap();
    }
    // one correction: re-coded after review
    let first_ref = corpus.bundles[0].reference_number.clone();
    let corrected = corpus.bundles[1].error_code.clone().unwrap();
    logged
        .update(
            "assignments",
            &Value::from(first_ref.as_str()),
            row![first_ref.clone(), corrected.clone(), "root"],
        )
        .unwrap();
    // one withdrawal
    let second_ref = corpus.bundles[1].reference_number.clone();
    logged
        .delete("assignments", &Value::from(second_ref.as_str()))
        .unwrap();
    drop(logged); // "crash"

    // recovery: snapshot + log replay
    let recovered = LoggedDatabase::recover(&snap, &wal).unwrap();
    assert_eq!(recovered.table("assignments").unwrap().len(), 19);
    let r = recovered
        .get("assignments", &Value::from(first_ref.as_str()))
        .unwrap()
        .unwrap();
    assert_eq!(r.get(1).and_then(Value::as_text), Some(corrected.as_str()));
    assert_eq!(r.get(2).and_then(Value::as_text), Some("root"));
    assert!(recovered
        .get("assignments", &Value::from(second_ref.as_str()))
        .unwrap()
        .is_none());
    // the raw corpus data is untouched by the log
    assert_eq!(
        recovered.table(tables::BUNDLES).unwrap().len(),
        corpus.bundles.len()
    );

    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn complaint_flat_files_roundtrip_through_store_csv() {
    // the §5.4 interchange path: complaints → CSV flat file → store table →
    // back to complaints, then classified
    let corpus = Corpus::generate(CorpusConfig::small(78));
    let complaints = generate_complaints(
        &corpus,
        &NhtsaConfig {
            n_complaints: 40,
            ..NhtsaConfig::default()
        },
    );
    let csv = complaints_to_csv(&complaints);
    let path = tmp("complaints.csv");
    std::fs::write(&path, &csv).unwrap();

    let reloaded = complaints_from_csv(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reloaded, complaints);

    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    let classified = reloaded
        .iter()
        .filter(|c| !svc.classify_external(&c.text).is_empty())
        .count();
    assert!(classified > 0, "no complaint classified after roundtrip");
    std::fs::remove_file(&path).ok();
}

#[test]
fn aggregation_matches_frequency_baseline_over_store() {
    // GroupBy::count ranking over the bundles table must agree with the
    // CodeFrequencyBaseline trained from the same data
    let corpus = Corpus::generate(CorpusConfig::small(79));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).unwrap();
    let table = db.table(tables::BUNDLES).unwrap();

    let part = corpus.bundles[0].part_id.clone();
    let grouped = GroupBy::count("error_code")
        .filter(Cond::eq(table, "part_id", part.as_str()).unwrap())
        .run_ranked(table)
        .unwrap();

    let baseline = CodeFrequencyBaseline::train(
        corpus
            .bundles
            .iter()
            .filter_map(|b| Some((b.part_id.as_str(), b.error_code.as_deref()?))),
    );
    let expected = baseline.rank(&part);
    let got: Vec<&str> = grouped.iter().filter_map(|g| g.key.as_text()).collect();
    assert_eq!(got, expected.iter().map(String::as_str).collect::<Vec<_>>());
}

#[test]
fn join_reconstructs_the_quest_bundle_view() {
    // bundles ⋈ error_codes gives the screen's "code + description" view
    let corpus = Corpus::generate(CorpusConfig::small(80));
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).unwrap();
    let bundles = db.table(tables::BUNDLES).unwrap();
    let codes = db.table(tables::ERROR_CODES).unwrap();

    let joined = Join::inner("error_code", "code")
        .run(bundles, codes)
        .unwrap();
    // every coded bundle joins to exactly one code row
    assert_eq!(joined.len(), corpus.bundles.len());
    let arity = bundles.schema().arity() + codes.schema().arity();
    for row in joined.iter().take(10) {
        assert_eq!(row.arity(), arity);
        // description column is the last one and non-empty
        assert!(!row
            .get(arity - 1)
            .and_then(Value::as_text)
            .unwrap()
            .is_empty());
    }
}
